// Package qdag is the repository's Qdag analogue (Navarro, Reutter &
// Rojas, ICDT 2020): the only previous succinct worst-case-optimal index.
// Each predicate's binary (subject, object) relation is stored as a
// k²-tree — a quadtree over the adjacency matrix serialized level by
// level into rank-enabled bitvectors — and a basic graph pattern is
// evaluated by intersecting the quadtrees lifted to the full variable
// hypercube: at each level every variable's range halves, giving 2^v
// sub-cells, and a cell survives only if every pattern's quadtree has the
// corresponding quadrant non-empty. The running time is O(Q*·2^v·log U)
// — the exponential-in-width factor the paper's Figure 8 exposes on
// larger patterns, while the space stays succinct.
//
// Like the system the paper benchmarked (see its footnote 6), this index
// only supports patterns with a constant predicate and variable subject
// and object; Evaluate returns ErrUnsupported otherwise, which is exactly
// why the paper excludes Qdag from its Table 2 benchmark.
package qdag

import (
	"errors"
	"time"

	"repro/internal/bitvector"
	"repro/internal/graph"
	"repro/internal/ltj"
)

// ErrUnsupported is returned for patterns outside the index's reach
// (constant subjects/objects or variable predicates).
var ErrUnsupported = errors.New("qdag: pattern shape not supported (predicates must be constant, subjects/objects variables)")

// k2tree is a static quadtree over a 2^h × 2^h boolean matrix.
type k2tree struct {
	h      uint // tree height; matrix side = 1 << h
	levels []*bitvector.Plain
	// levels[l] holds 4 bits per level-l node, one per quadrant, in BFS
	// order. A node is identified by its BFS index; the root is node 0 of
	// level 0. The children of a set bit are the node at the next level
	// whose index is the rank of that bit.
	n int // number of points
}

type point struct{ row, col graph.ID }

// buildK2 builds the quadtree of the given points (rows and cols < side,
// side = 1<<h).
func buildK2(points []point, h uint) *k2tree {
	t := &k2tree{h: h, n: len(points)}
	if h == 0 {
		h = 1
		t.h = 1
	}
	// BFS: at each level, nodes are groups of points within one submatrix.
	type node struct {
		pts  []point
		size graph.ID // submatrix side
	}
	cur := []node{{pts: points, size: 1 << t.h}}
	for l := uint(0); l < t.h; l++ {
		b := bitvector.NewBuilder(4 * len(cur))
		var next []node
		for gi, nd := range cur {
			half := nd.size / 2
			var quads [4][]point
			for _, p := range nd.pts {
				q := 0
				if p.row >= half {
					q += 2
				}
				if p.col >= half {
					q++
				}
				quads[q] = append(quads[q], p)
			}
			for q := 0; q < 4; q++ {
				if len(quads[q]) == 0 {
					continue
				}
				b.Set(4*gi + q)
				if l+1 < t.h {
					// Translate the points into the child submatrix.
					child := make([]point, len(quads[q]))
					for i, p := range quads[q] {
						child[i] = p
						if q >= 2 {
							child[i].row -= half
						}
						if q%2 == 1 {
							child[i].col -= half
						}
					}
					next = append(next, node{pts: child, size: half})
				}
			}
		}
		t.levels = append(t.levels, b.BuildPlain())
		cur = next
	}
	return t
}

// childNode returns the BFS index at level l+1 of the child of node g in
// quadrant q, or -1 if that quadrant is empty. The last level has no
// children; hasQuad answers emptiness there.
func (t *k2tree) childNode(l uint, g int, q int) int {
	bit := 4*g + q
	if !t.levels[l].Get(bit) {
		return -1
	}
	return t.levels[l].Rank1(bit) // set bits before this one = child index
}

// hasQuad reports whether node g at level l has a non-empty quadrant q.
func (t *k2tree) hasQuad(l uint, g int, q int) bool {
	return t.levels[l].Get(4*g + q)
}

func (t *k2tree) sizeBytes() int {
	total := 16
	for _, lv := range t.levels {
		total += lv.SizeBytes()
	}
	return total
}

// Index holds one k²-tree per predicate.
type Index struct {
	trees map[graph.ID]*k2tree
	h     uint
	numSO graph.ID
	n     int
}

// New builds the per-predicate quadtrees of g.
func New(g *graph.Graph) *Index {
	h := uint(1)
	for (graph.ID(1) << h) < g.NumSO() {
		h++
	}
	idx := &Index{trees: map[graph.ID]*k2tree{}, h: h, numSO: g.NumSO(), n: g.Len()}
	byPred := map[graph.ID][]point{}
	for _, tr := range g.Triples() {
		byPred[tr.P] = append(byPred[tr.P], point{row: tr.S, col: tr.O})
	}
	for p, pts := range byPred {
		idx.trees[p] = buildK2(pts, h)
	}
	return idx
}

// SizeBytes returns the total footprint of the quadtrees.
func (idx *Index) SizeBytes() int {
	total := 48
	for _, t := range idx.trees {
		total += t.sizeBytes()
	}
	return total
}

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return idx.n }

// liftedPattern is one pattern prepared for the hypercube walk: its
// quadtree and the dimensions its row/column map to.
type liftedPattern struct {
	t        *k2tree
	rowDim   int
	colDim   int
	curNodes []int // node stack during the descent (index per level)
}

// Evaluate runs the lifted multiway intersection. Only patterns of the
// form (?x, p, ?y) — constant predicate, variable subject/object — are
// supported; ErrUnsupported is returned otherwise.
func (idx *Index) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	res := &ltj.Result{}
	if len(q) == 0 {
		return res, nil
	}
	// Map variables to hypercube dimensions.
	dimOf := map[string]int{}
	var dims []string
	lift := make([]liftedPattern, 0, len(q))
	for _, tp := range q {
		if tp.P.IsVar || !tp.S.IsVar || !tp.O.IsVar {
			return nil, ErrUnsupported
		}
		t, ok := idx.trees[tp.P.Value]
		if !ok {
			return res, nil // predicate absent: no solutions
		}
		for _, name := range []string{tp.S.Name, tp.O.Name} {
			if _, ok := dimOf[name]; !ok {
				dimOf[name] = len(dims)
				dims = append(dims, name)
			}
		}
		lift = append(lift, liftedPattern{
			t:        t,
			rowDim:   dimOf[tp.S.Name],
			colDim:   dimOf[tp.O.Name],
			curNodes: make([]int, idx.h+1),
		})
	}

	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	ticks := 0

	vals := make([]graph.ID, len(dims)) // accumulated high bits per dimension
	var rec func(level uint) bool
	rec = func(level uint) bool {
		if !deadline.IsZero() {
			ticks++
			if ticks&255 == 0 && time.Now().After(deadline) {
				res.TimedOut = true
				return false
			}
		}
		if level == idx.h {
			// One cell: a full assignment.
			b := graph.Binding{}
			for i, name := range dims {
				if vals[i] >= idx.numSO {
					return true // cell outside the domain (padding)
				}
				b[name] = vals[i]
			}
			res.Solutions = append(res.Solutions, b)
			return opt.Limit <= 0 || len(res.Solutions) < opt.Limit
		}
		// Try all 2^v half-splits of the current cell.
		v := len(dims)
		for combo := 0; combo < 1<<v; combo++ {
			ok := true
			for i := range lift {
				lp := &lift[i]
				rb := (combo >> lp.rowDim) & 1
				cb := (combo >> lp.colDim) & 1
				qd := rb*2 + cb
				if !lp.t.hasQuad(level, lp.curNodes[level], qd) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Descend every pattern and every dimension.
			for i := range lift {
				lp := &lift[i]
				rb := (combo >> lp.rowDim) & 1
				cb := (combo >> lp.colDim) & 1
				lp.curNodes[level+1] = lp.t.childNode(level, lp.curNodes[level], rb*2+cb)
			}
			for i := range dims {
				vals[i] = vals[i]<<1 | graph.ID((combo>>i)&1)
			}
			cont := rec(level + 1)
			for i := range dims {
				vals[i] >>= 1
			}
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
	return res, nil
}
