package ltj

// Batched radix-intersection lane (DESIGN.md §13). When every iterator
// touching a join variable advertises trieiter.RunLeaper — its Leap
// candidates are the distinct symbols of one contiguous wavelet-matrix
// range — the engine replaces the ping-pong leapfrog seek loop with a
// single wavelet.IntersectRanges descent carrying all the ranges at
// once. The emitted values are exactly the values the scalar seek loop
// would accept, in the same increasing order, so the sequential engine's
// solution stream is unchanged down to the byte; only the cost model
// differs (one pruned multi-range walk instead of k root-to-leaf
// descents per candidate).

import (
	"repro/internal/graph"
	"repro/internal/trieiter"
	"repro/internal/wavelet"
)

// defaultBatchThreshold is the minimum candidate-range length at which
// the batched lane engages when Options.BatchThreshold is 0. Tiny ranges
// leapfrog in a handful of descents, so the multi-range walk's setup is
// not worth it there.
const defaultBatchThreshold = 16

// batchRuns decides whether variable j takes the batched lane and, if
// so, collects the iterators' candidate ranges into the evaluator's
// per-depth buffer (per-depth because the ranges stay live for the whole
// IntersectRanges walk, across the recursion into deeper variables). The
// lane requires ≥2 iterators (a lone iterator is the lonely/enumerate
// case), single-position occurrences, RunLeaper support under the
// current bindings, equal matrix widths, and a smallest range of at
// least the selectivity threshold.
//
//ringlint:hotpath allow-dispatch -- capability probe and LeapRun on the index-generic iterator
func (e *evaluator) batchRuns(j int, ivs []iterVar) ([]wavelet.MatrixRange, bool) {
	if e.opt.DisableBatch || len(ivs) < 2 {
		return nil, false
	}
	thr := e.opt.BatchThreshold
	if thr <= 0 {
		thr = defaultBatchThreshold
	}
	rs := e.runBufs[j][:0]
	minCount := -1
	for _, iv := range ivs {
		if len(iv.positions) != 1 {
			return nil, false
		}
		rl, ok := iv.it.(trieiter.RunLeaper)
		if !ok {
			return nil, false
		}
		r, ok := rl.LeapRun(iv.positions[0])
		if !ok || (len(rs) > 0 && r.M.Width() != rs[0].M.Width()) {
			return nil, false
		}
		if n := r.Hi - r.Lo; minCount < 0 || n < minCount {
			minCount = n
		}
		rs = append(rs, r)
	}
	e.runBufs[j] = rs
	if minCount < thr {
		return nil, false
	}
	return rs, true
}

// searchBatched eliminates variable j with one radix intersection of the
// collected ranges in place of the scalar seek loop. Each emitted value
// is bound in every iterator and the search recurses, exactly as the
// scalar loop's per-value body does — Empty() is still consulted, so an
// index whose LeapRun over-approximates would degrade, not corrupt.
func (e *evaluator) searchBatched(j int, name string, ivs []iterVar, rs []wavelet.MatrixRange) error {
	e.stats.BatchDescents++
	var rerr error
	prev, havePrev := graph.ID(0), false
	wavelet.IntersectRanges(rs, func(cv uint64) bool {
		if rerr = e.checkDeadline(); rerr != nil {
			return false
		}
		v := graph.ID(cv)
		e.stats.BatchEmits++
		if ringdebugEnabled {
			e.debugCheckBatchEmit(ivs, v, prev, havePrev)
			prev, havePrev = v, true
		}
		bound := 0
		alive := true
		for _, iv := range ivs {
			e.stats.Binds++
			iv.it.Bind(iv.positions[0], v)
			bound++
			if iv.it.Empty() {
				alive = false
				break
			}
		}
		if alive {
			e.binding[name] = v
			rerr = e.search(j + 1)
			delete(e.binding, name)
		}
		for i := 0; i < bound; i++ {
			ivs[i].it.Unbind()
		}
		return rerr == nil && !e.stopped
	})
	return rerr
}
