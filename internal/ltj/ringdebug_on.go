//go:build ringdebug

package ltj

// ringdebugEnabled gates the runtime assertion hooks in debug.go. This
// build carries the ringdebug tag, so the assertions are compiled in.
const ringdebugEnabled = true
