package ltj

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

// heavyQuery is a three-hop all-variable join: over a few thousand random
// triples its full evaluation takes long enough that a cancellation issued
// mid-run is always observed before the search finishes.
func heavyQuery() graph.Pattern {
	return graph.Pattern{
		graph.TP(graph.Var("a"), graph.Var("p1"), graph.Var("b")),
		graph.TP(graph.Var("b"), graph.Var("p2"), graph.Var("c")),
		graph.TP(graph.Var("c"), graph.Var("p3"), graph.Var("d")),
	}
}

func TestSequentialContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := testutil.RandomGraph(rng, 5000, 40, 2)
	idx := ringIndex(g, ring.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := Stream(idx, heavyQuery(), Options{Context: ctx}, func(graph.Binding) bool {
		n++
		if n == 10 {
			cancel()
		}
		return true
	})
	if err == nil {
		t.Fatal("cancelled evaluation returned nil error")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
}

func TestSequentialContextDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	g := testutil.RandomGraph(rng, 5000, 40, 2)
	idx := ringIndex(g, ring.Options{})

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := Stream(idx, heavyQuery(), Options{Context: ctx}, func(graph.Binding) bool { return true })
	if err == nil {
		t.Skip("machine evaluated the query within a millisecond budget")
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.DeadlineExceeded", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	err := Stream(idx, q, Options{Context: ctx}, func(graph.Binding) bool { return true })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestParallelContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	g := testutil.RandomGraph(rng, 5000, 40, 2)
	idx := ringIndex(g, ring.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := Stream(idx, heavyQuery(), Options{Context: ctx, Parallelism: 4}, func(graph.Binding) bool {
		n++
		if n == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestContextDoesNotDisturbCompleteRuns pins that a live, never-cancelled
// context changes neither the solutions nor the error of an evaluation,
// sequentially and in parallel.
func TestContextDoesNotDisturbCompleteRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := testutil.RandomGraph(rng, 300, 20, 3)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Var("q"), graph.Var("z")),
	}
	want, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		got, err := Evaluate(idx, q, Options{Context: context.Background(), Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if diff := testutil.SameSolutions(got.Solutions, want.Solutions, q.Vars()); diff != "" {
			t.Fatalf("parallelism %d: %s", par, diff)
		}
	}
}

// TestLimitStopBeatsCancelledContext: when emit stops the evaluation
// (limit satisfied) the run is a clean success even if the context is
// cancelled immediately afterwards — internal stops are not errors.
func TestLimitStopBeatsCancelledContext(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	err := Stream(idx, q, Options{Context: ctx}, func(graph.Binding) bool {
		cancel()
		return false // stop after the first solution
	})
	if err != nil {
		t.Fatalf("emit-stopped evaluation returned %v, want nil", err)
	}
}
