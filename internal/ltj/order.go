package ltj

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// chooseOrder computes the variable elimination order.
//
// Following Section 4.3, variables that appear in more than one triple
// pattern ("join variables") are eliminated first, by increasing minimum
// cardinality c_min(x) = min over patterns mentioning x of the pattern's
// current match count, preferring at each step a variable that shares a
// pattern with one already ordered. Lonely variables (appearing in exactly
// one pattern, at one position) come last, grouped by pattern and ordered
// along the pattern's backward chain so the index can enumerate them
// (Section 4.2).
func (e *evaluator) chooseOrder(q graph.Pattern) ([]string, error) {
	// Collect the variables of the live (non-ground) patterns.
	var vars []string
	seen := map[string]bool{}
	for i := range e.pats {
		for _, v := range e.pats[i].tp.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}

	if e.opt.Order != nil {
		if len(e.opt.Order) != len(vars) {
			return nil, fmt.Errorf("ltj: explicit order has %d variables, query has %d",
				len(e.opt.Order), len(vars))
		}
		for _, v := range e.opt.Order {
			if !seen[v] {
				return nil, fmt.Errorf("ltj: explicit order mentions unknown variable %q", v)
			}
			delete(seen, v)
		}
		return e.opt.Order, nil
	}
	if e.opt.DisableOrderHeuristic {
		return vars, nil
	}

	// Classify variables: lonely = exactly one pattern, exactly one position.
	patsOf := map[string][]int{}
	for i := range e.pats {
		for _, v := range e.pats[i].tp.Vars() {
			patsOf[v] = append(patsOf[v], i)
		}
	}
	lonely := map[string]bool{}
	for _, v := range vars {
		ps := patsOf[v]
		if len(ps) == 1 && len(e.pats[ps[0]].tp.Positions(v)) == 1 {
			lonely[v] = true
		}
	}

	// Order the join variables by increasing c_min with a connectivity
	// preference.
	var joinVars []string
	for _, v := range vars {
		if !lonely[v] {
			joinVars = append(joinVars, v)
		}
	}
	cmin := map[string]int{}
	for _, v := range joinVars {
		best := math.MaxInt
		for _, pi := range patsOf[v] {
			if c := e.pats[pi].it.Count(); c < best {
				best = c
			}
		}
		cmin[v] = best
	}
	inPattern := map[string]map[int]bool{}
	for _, v := range joinVars {
		inPattern[v] = map[int]bool{}
		for _, pi := range patsOf[v] {
			inPattern[v][pi] = true
		}
	}

	var order []string
	chosenPats := map[int]bool{}
	remaining := append([]string(nil), joinVars...)
	for len(remaining) > 0 {
		bestIdx, bestCost, bestConn := -1, math.MaxInt, false
		for i, v := range remaining {
			conn := false
			for pi := range inPattern[v] {
				if chosenPats[pi] {
					conn = true
					break
				}
			}
			if len(order) == 0 {
				conn = true // no connectivity constraint for the first pick
			}
			// Prefer connected variables; among equals, smaller c_min wins;
			// ties break by query order (stable since we scan in order).
			if (conn && !bestConn) || (conn == bestConn && cmin[v] < bestCost) {
				bestIdx, bestCost, bestConn = i, cmin[v], conn
			}
		}
		v := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		order = append(order, v)
		for pi := range inPattern[v] {
			chosenPats[pi] = true
		}
	}

	// Append lonely variables, per pattern, along the backward chain from
	// the pattern's bound run so that Enumerate applies at each step.
	for i := range e.pats {
		order = append(order, lonelyChain(e.pats[i].tp, lonely)...)
	}
	return order, nil
}

// lonelyChain returns the pattern's lonely variables ordered so that each
// one is backward-adjacent to the bound run when its turn comes. The run
// at that time consists of the pattern's constants and join-variable
// positions; the chain proceeds from the run start cyclically backward.
// With an empty run the chain starts at the subject (bound by a leap) and
// proceeds backward (o, then p).
func lonelyChain(tp graph.TriplePattern, lonely map[string]bool) []string {
	isLonely := func(pos graph.Position) bool {
		t := tp.Term(pos)
		return t.IsVar && lonely[t.Name]
	}
	bound := map[graph.Position]bool{}
	nBound := 0
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		if !isLonely(pos) {
			bound[pos] = true
			nBound++
		}
	}
	var chain []graph.Position
	switch nBound {
	case 3:
		return nil
	case 0:
		// Bind the subject first, then backward: o, p.
		chain = []graph.Position{graph.PosS, graph.PosO, graph.PosP}
	default:
		// Run start: the bound position whose predecessor is unbound.
		var start graph.Position
		for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
			if bound[pos] && !bound[pos.Prev()] {
				start = pos
				break
			}
		}
		for pos := start.Prev(); !bound[pos]; pos = pos.Prev() {
			chain = append(chain, pos)
		}
	}
	var out []string
	for _, pos := range chain {
		out = append(out, tp.Term(pos).Name)
	}
	return out
}
