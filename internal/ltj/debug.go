package ltj

import (
	"fmt"

	"repro/internal/graph"
)

// debugCheckLeapOrder asserts the trie-iterator ordering contract the
// engine's seek loop relies on (Algorithm 1): Leap(pos, c) never returns
// a value below c. Called behind `if ringdebugEnabled { ... }` so normal
// builds eliminate it entirely.
func debugCheckLeapOrder(c, v graph.ID) {
	if v < c {
		panic(fmt.Sprintf("ringdebug: ltj: iterator leap returned %d < cursor %d (ordering contract violated)", v, c))
	}
}
