package ltj

import (
	"fmt"

	"repro/internal/graph"
)

// debugCheckLeapOrder asserts the trie-iterator ordering contract the
// engine's seek loop relies on (Algorithm 1): Leap(pos, c) never returns
// a value below c. Called behind `if ringdebugEnabled { ... }` so normal
// builds eliminate it entirely.
func debugCheckLeapOrder(c, v graph.ID) {
	if v < c {
		panic(fmt.Sprintf("ringdebug: ltj: iterator leap returned %d < cursor %d (ordering contract violated)", v, c))
	}
}

// debugCheckBatchEmit asserts the batched lane's contract (DESIGN.md
// §13): emissions strictly increase, and — sampled — each emitted value
// is exactly what the scalar seek loop would have accepted, i.e. every
// iterator's Leap at the value returns the value itself.
func (e *evaluator) debugCheckBatchEmit(ivs []iterVar, v, prev graph.ID, havePrev bool) {
	if havePrev && v <= prev {
		panic(fmt.Sprintf("ringdebug: ltj: batched lane emitted %d after %d — not strictly increasing", v, prev))
	}
	if e.stats.BatchEmits&15 != 1 {
		return
	}
	for _, iv := range ivs {
		got, ok := iv.it.Leap(iv.positions[0], v)
		if !ok || got != v {
			panic(fmt.Sprintf("ringdebug: ltj: batched emission %d disagrees with scalar Leap (%d, %v)", v, got, ok))
		}
	}
}
