// Parallel intra-query evaluation (Options.Parallelism > 1).
//
// The leapfrog search tree decomposes cleanly by the first eliminated
// variable (Veldhuizen 2014): for every value v of the first variable's
// intersection, the subtree below the binding x0 = v is independent of
// every other subtree. The ring's query structures (wavelet-matrix
// columns, C arrays, bitvector directories) are immutable once built, so
// the subtrees can be explored by worker goroutines that share the index
// read-only and own only a forked iterator cursor each.
//
// Division of labour:
//
//   - a producer goroutine runs the first variable's candidate generation
//     (the top level of leapfrog_search: either the seek loop or the
//     lonely-variable enumeration) on the evaluation's own iterators and
//     batches the candidate values into contiguous chunks;
//   - K worker goroutines pull chunks from a shared channel (cheap work
//     stealing: a worker stuck on a heavy hub value simply stops taking
//     chunks, so skewed Zipf domains do not straggle), bind each value on
//     their forked iterators and run the ordinary sequential search from
//     depth 1;
//   - solutions merge through a bounded channel back onto the calling
//     goroutine, which is the only one that invokes the caller's emit —
//     streaming semantics, Limit short-circuit and Timeout behave as in
//     sequential mode, except that solution order is nondeterministic.
//
// Each worker explores a subset of the sequential search tree, so the
// per-worker work is bounded by the sequential wco bound; the union of
// the subsets is exactly the sequential tree, so the solution multiset is
// preserved (the differential tests assert this).
package ltj

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/wavelet"
)

// DefaultParallelism returns the worker count the CLIs use for
// "-parallel auto": the scheduler's processor count.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// maxBatch caps the candidates per work chunk. Chunks start at 1 and
// double up to this cap, so the head of a skewed domain (hub nodes with
// huge subtrees) is spread across workers value by value while long
// uniform tails move in bulk.
const maxBatch = 32

// solBuffer is the capacity of the bounded solution channel: large enough
// to decouple worker bursts from the caller's emit, small enough that a
// Limit short-circuit wastes little work.
const solBuffer = 256

// forkIter hands a worker its own iterator for p. Iterators advertising
// the ForkableIter capability clone their cursor; anything else is
// rebuilt from the pattern, which is equivalent here because workers fork
// before any variable is bound — the rebuilt iterator holds exactly the
// pattern's constants (Lemma 3.6), the same state a fork would copy.
func forkIter(idx Index, p patternEntry) PatternIter {
	if f, ok := p.it.(ForkableIter); ok {
		if it := f.Fork(); it != nil {
			return it
		}
	}
	return idx.NewPatternIter(p.tp)
}

// searchParallel distributes search(0) over opt.Parallelism workers. It
// is called on a fully set-up evaluator (iterators created, order chosen,
// varIters built) in place of e.search(0).
func (e *evaluator) searchParallel(idx Index) error {
	//ringlint:detach -- default root when the caller set no opt.Context; callers with one are honoured below
	parent := context.Background()
	if e.opt.Context != nil {
		parent = e.opt.Context
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Fork the worker evaluators first, while the main iterators are
	// still untouched by any seek (producer leaps may Bind/Unbind
	// transiently for multi-occurrence variables).
	nworkers := e.opt.Parallelism
	workers := make([]*evaluator, nworkers)
	for w := range workers {
		we := &evaluator{
			opt:      e.opt,
			order:    e.order,
			binding:  graph.Binding{},
			runBufs:  make([][]wavelet.MatrixRange, len(e.order)),
			deadline: e.deadline,
			ctx:      ctx,
			stats:    &EvalStats{},
		}
		for _, p := range e.pats {
			we.pats = append(we.pats, patternEntry{tp: p.tp, it: forkIter(idx, p)})
		}
		var err error
		if we.varIters, err = buildVarIters(e.order, we.pats); err != nil {
			return err // unreachable: the sequential setup already validated
		}
		workers[w] = we
	}
	e.ctx = ctx // let the producer's checkDeadline observe cancellation

	tasks := make(chan []graph.ID, 2*nworkers)
	sols := make(chan graph.Binding, solBuffer)
	errs := make(chan error, nworkers+1)

	go func() {
		defer close(tasks)
		err := e.produce(ctx, tasks)
		if err != nil && err != errCancelled {
			cancel() // e.g. producer timeout: stop the workers promptly
		}
		errs <- err
	}()

	var wg sync.WaitGroup
	for _, we := range workers {
		we := we
		we.emit = func(b graph.Binding) bool {
			select {
			case sols <- b.Clone():
				return true
			case <-ctx.Done():
				return false
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := we.drain(tasks)
			if err != nil && err != errCancelled {
				cancel()
			}
			errs <- err
		}()
	}
	go func() {
		wg.Wait()
		close(sols)
	}()

	// Merge: the calling goroutine alone runs the caller's emit, so
	// Stream's contract (emit never called concurrently) holds. After
	// emit stops the evaluation we keep draining so no worker blocks on
	// a full channel before observing the cancellation.
	stopped := false
	for b := range sols {
		if stopped {
			continue
		}
		if !e.emit(b) {
			stopped = true
			cancel()
		}
	}

	// Workers are done (sols closed) and the producer is past its last
	// channel send, so collecting errors and stats is race-free.
	var firstErr error
	for i := 0; i < nworkers+1; i++ {
		if err := <-errs; err != nil && err != errCancelled && firstErr == nil {
			firstErr = err
		}
	}
	for _, we := range workers {
		e.stats.Leaps += we.stats.Leaps
		e.stats.Binds += we.stats.Binds
		e.stats.Enumerations += we.stats.Enumerations
		e.stats.Seeks += we.stats.Seeks
		e.stats.BatchDescents += we.stats.BatchDescents
		e.stats.BatchEmits += we.stats.BatchEmits
	}
	return firstErr
}

// produce enumerates the first variable's candidate values — mirroring
// search(0)'s candidate generation exactly — and ships them to the
// workers in contiguous chunks of geometrically growing size.
func (e *evaluator) produce(ctx context.Context, tasks chan<- []graph.ID) error {
	ivs := e.varIters[0]
	batchCap := 1
	batch := make([]graph.ID, 0, batchCap)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case tasks <- batch:
		case <-ctx.Done():
			return false
		}
		if batchCap < maxBatch {
			batchCap *= 2
		}
		batch = make([]graph.ID, 0, batchCap)
		return true
	}
	add := func(v graph.ID) bool {
		batch = append(batch, v)
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	}

	// Lonely-variable fast path, as in search (Section 4.2).
	if !e.opt.DisableLonely && len(ivs) == 1 && len(ivs[0].positions) == 1 &&
		ivs[0].it.CanEnumerate(ivs[0].positions[0]) {
		var rerr error
		ivs[0].it.Enumerate(ivs[0].positions[0], func(c graph.ID) bool {
			if rerr = e.checkDeadline(); rerr != nil {
				return false
			}
			e.stats.Enumerations++
			if !add(c) {
				rerr = errCancelled
				return false
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		if !flush() {
			return errCancelled
		}
		return nil
	}

	// Batched radix-intersection lane, as in search: the intersection's
	// emissions are exactly the values the seek loop below would accept
	// (workers re-verify each candidate with Bind+Empty either way).
	if rs, ok := e.batchRuns(0, ivs); ok {
		e.stats.BatchDescents++
		var rerr error
		wavelet.IntersectRanges(rs, func(cv uint64) bool {
			if rerr = e.checkDeadline(); rerr != nil {
				return false
			}
			e.stats.BatchEmits++
			if !add(graph.ID(cv)) {
				rerr = errCancelled
				return false
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		if !flush() {
			return errCancelled
		}
		return nil
	}

	// General seek loop, as in search.
	c := graph.ID(0)
	for {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		v, ok, err := e.seek(ivs, c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if !add(v) {
			return errCancelled
		}
		if v == graph.MaxID {
			break // the "c = v + 1" below would wrap to 0
		}
		c = v + 1
	}
	if !flush() {
		return errCancelled
	}
	return nil
}

// drain is a worker's main loop: for every candidate value of the first
// variable, run the body of search(0)'s per-value step — bind everywhere,
// descend to depth 1, unwind — on the worker's forked iterators.
func (we *evaluator) drain(tasks <-chan []graph.ID) error {
	name := we.order[0]
	ivs := we.varIters[0]
	for batch := range tasks {
		for _, v := range batch {
			if err := we.checkDeadline(); err != nil {
				return err
			}
			bound := 0
			alive := true
			for _, iv := range ivs {
				for _, pos := range iv.positions {
					we.stats.Binds++
					iv.it.Bind(pos, v)
					bound++
				}
				if iv.it.Empty() {
					alive = false
					break
				}
			}
			var err error
			if alive {
				we.binding[name] = v
				err = we.search(1)
				delete(we.binding, name)
			}
			for _, iv := range ivs {
				for range iv.positions {
					if bound == 0 {
						break
					}
					iv.it.Unbind()
					bound--
				}
			}
			if err != nil {
				return err
			}
			if we.stopped {
				return nil
			}
		}
	}
	return nil
}
