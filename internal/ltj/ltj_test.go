package ltj

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func ringIndex(g *graph.Graph, opt ring.Options) Index {
	r := ring.New(g, opt)
	return IndexFunc(func(tp graph.TriplePattern) PatternIter {
		return r.NewPatternState(tp)
	})
}

func evalBoth(t *testing.T, g *graph.Graph, q graph.Pattern, opt Options) []graph.Binding {
	t.Helper()
	res, err := Evaluate(ringIndex(g, ring.Options{}), q, opt)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return res.Solutions
}

func TestPaperFigure4Query(t *testing.T) {
	g := testutil.PaperGraph()
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}
	got := evalBoth(t, g, q, Options{})
	want := g.Evaluate(q, 0)
	if diff := testutil.SameSolutions(got, want, q.Vars()); diff != "" {
		t.Fatalf("paper query: %s", diff)
	}
	if len(got) != 3 {
		t.Fatalf("paper query returned %d solutions, want 3", len(got))
	}
}

func TestIntroductionExample(t *testing.T) {
	// The introduction's Q = R ⋈ S ⋈ T example, encoded as a graph with
	// one predicate per relation: R(x,y) → (x, 0, y), S(y,z) → (y, 1, z),
	// T(x,z) → (x, 2, z). Expected solutions: (1,2,4) and (1,3,4).
	g := graph.New([]graph.Triple{
		{S: 1, P: 0, O: 2}, {S: 1, P: 0, O: 3}, {S: 2, P: 0, O: 3}, // R
		{S: 2, P: 1, O: 4}, {S: 3, P: 1, O: 4}, {S: 3, P: 1, O: 5}, // S
		{S: 1, P: 2, O: 4}, {S: 3, P: 2, O: 5}, // T
	})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("z")),
	}
	got := evalBoth(t, g, q, Options{})
	want := map[[3]graph.ID]bool{{1, 2, 4}: true, {1, 3, 4}: true}
	if len(got) != 2 {
		t.Fatalf("got %d solutions, want 2: %v", len(got), got)
	}
	for _, b := range got {
		if !want[[3]graph.ID{b["x"], b["y"], b["z"]}] {
			t.Errorf("unexpected solution %v", b)
		}
	}
}

// TestRandomQueriesAgainstOracle is the central end-to-end equivalence
// test: LTJ over the ring must produce exactly the naive evaluator's
// solutions for random patterns of every shape.
func TestRandomQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	configs := []struct {
		name string
		ropt ring.Options
		eopt Options
	}{
		{"ring", ring.Options{}, Options{}},
		{"c-ring", ring.Options{Compress: true, RRRBlock: 16}, Options{}},
		{"no-lonely", ring.Options{}, Options{DisableLonely: true}},
		{"no-order-heuristic", ring.Options{}, Options{DisableOrderHeuristic: true}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			g := testutil.RandomGraph(rng, 120, 15, 3)
			idx := ringIndex(g, cfg.ropt)
			for trial := 0; trial < 150; trial++ {
				nt := 1 + rng.Intn(4)
				nv := 1 + rng.Intn(4)
				q := testutil.RandomPattern(rng, g, nt, nv, 0.4, false)
				want := g.Evaluate(q, 0)
				res, err := Evaluate(idx, q, cfg.eopt)
				if err != nil {
					t.Fatalf("trial %d query %v: %v", trial, q, err)
				}
				if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
					t.Fatalf("trial %d query %v: %s", trial, q, diff)
				}
			}
		})
	}
}

func TestRepeatedVariablesWithinPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := testutil.RandomGraph(rng, 100, 10, 3)
	// Ensure some self-loops exist so the queries are non-trivial.
	ts := append([]graph.Triple{}, g.Triples()...)
	for i := 0; i < 8; i++ {
		s := graph.ID(rng.Intn(10))
		ts = append(ts, graph.Triple{S: s, P: graph.ID(rng.Intn(3)), O: s})
	}
	g = graph.NewWithDomains(ts, 10, 3)
	idx := ringIndex(g, ring.Options{})

	queries := []graph.Pattern{
		{graph.TP(graph.Var("x"), graph.Const(0), graph.Var("x"))},
		{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("x"))},
		{
			graph.TP(graph.Var("x"), graph.Const(1), graph.Var("x")),
			graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		},
	}
	for trial := 0; trial < 80; trial++ {
		queries = append(queries, testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(3), 0.3, true))
	}
	for i, q := range queries {
		want := g.Evaluate(q, 0)
		res, err := Evaluate(idx, q, Options{})
		if err != nil {
			t.Fatalf("query %d %v: %v", i, q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %d %v: %s", i, q, diff)
		}
	}
}

func TestGroundPatterns(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})

	// Satisfied ground pattern joined with a variable pattern: no effect.
	q := graph.Pattern{
		graph.TP(graph.Const(0), graph.Const(0), graph.Const(2)),
		graph.TP(graph.Const(5), graph.Const(2), graph.Var("y")),
	}
	res, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 4 {
		t.Errorf("got %d solutions, want 4 winners", len(res.Solutions))
	}

	// Unsatisfied ground pattern kills the query.
	q[0] = graph.TP(graph.Const(2), graph.Const(0), graph.Const(0))
	res, err = Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("unsatisfied ground pattern: got %d solutions, want 0", len(res.Solutions))
	}

	// All-ground query: one empty solution when satisfied.
	res, err = Evaluate(idx, graph.Pattern{graph.TP(graph.Const(0), graph.Const(0), graph.Const(2))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || len(res.Solutions[0]) != 0 {
		t.Errorf("all-ground satisfied query: %v", res.Solutions)
	}
}

func TestLimit(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(43)), 500, 20, 2)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	res, err := Evaluate(idx, q, Options{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 7 {
		t.Errorf("limit 7: got %d solutions", len(res.Solutions))
	}
}

func TestTimeout(t *testing.T) {
	// A heavily joined query over a dense graph with an absurdly small
	// timeout must stop early and report TimedOut.
	rng := rand.New(rand.NewSource(44))
	g := testutil.RandomGraph(rng, 5000, 40, 2)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("a"), graph.Var("p1"), graph.Var("b")),
		graph.TP(graph.Var("b"), graph.Var("p2"), graph.Var("c")),
		graph.TP(graph.Var("c"), graph.Var("p3"), graph.Var("d")),
	}
	res, err := Evaluate(idx, q, Options{Timeout: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("machine evaluated the query within a microsecond budget")
	}
}

func TestExplicitOrder(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}
	want := g.Evaluate(q, 0)
	for _, order := range [][]string{
		{"x", "y", "z"}, {"z", "y", "x"}, {"y", "z", "x"}, {"y", "x", "z"},
	} {
		res, err := Evaluate(idx, q, Options{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("order %v: %s", order, diff)
		}
	}
	// Invalid orders error out.
	if _, err := Evaluate(idx, q, Options{Order: []string{"x", "y"}}); err == nil {
		t.Error("short explicit order accepted")
	}
	if _, err := Evaluate(idx, q, Options{Order: []string{"x", "y", "w"}}); err == nil {
		t.Error("unknown variable in explicit order accepted")
	}
}

func TestAllVariableOrdersAgree(t *testing.T) {
	// Property: the solution set is independent of the elimination order.
	rng := rand.New(rand.NewSource(45))
	g := testutil.RandomGraph(rng, 80, 12, 3)
	idx := ringIndex(g, ring.Options{})
	for trial := 0; trial < 30; trial++ {
		q := testutil.RandomPattern(rng, g, 2, 3, 0.3, false)
		vars := q.Vars()
		want := g.Evaluate(q, 0)
		perms := permutations(vars)
		for _, order := range perms {
			res, err := Evaluate(idx, q, Options{Order: order})
			if err != nil {
				t.Fatalf("query %v order %v: %v", q, order, err)
			}
			if diff := testutil.SameSolutions(res.Solutions, want, vars); diff != "" {
				t.Fatalf("query %v order %v: %s", q, order, diff)
			}
		}
	}
}

func permutations(xs []string) [][]string {
	if len(xs) <= 1 {
		return [][]string{append([]string(nil), xs...)}
	}
	var out [][]string
	for i := range xs {
		rest := append(append([]string(nil), xs[:i]...), xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{xs[i]}, p...))
		}
	}
	return out
}

func TestStreamEarlyStop(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(46)), 200, 20, 2)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	n := 0
	err := Stream(idx, q, Options{}, func(b graph.Binding) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("stream visited %d solutions, want 5", n)
	}
}

func TestEmptyQuery(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})
	res, err := Evaluate(idx, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("empty query returned %d solutions", len(res.Solutions))
	}
}

func TestDisconnectedQuery(t *testing.T) {
	// Two patterns sharing no variables: a cross product.
	g := graph.New([]graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 2, P: 1, O: 3}, {S: 4, P: 1, O: 5},
	})
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("a"), graph.Const(0), graph.Var("b")),
		graph.TP(graph.Var("c"), graph.Const(1), graph.Var("d")),
	}
	res, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("cross product returned %d solutions, want 2", len(res.Solutions))
	}
	want := g.Evaluate(q, 0)
	if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
		t.Error(diff)
	}
}

func TestTriangleQuery(t *testing.T) {
	// Classic wco case: triangles. Build a graph with known triangles.
	ts := []graph.Triple{}
	// Triangle 0-1-2 and 3-4-5 under predicate 0, plus noise.
	for _, tri := range [][3]graph.ID{{0, 1, 2}, {3, 4, 5}} {
		ts = append(ts,
			graph.Triple{S: tri[0], P: 0, O: tri[1]},
			graph.Triple{S: tri[1], P: 0, O: tri[2]},
			graph.Triple{S: tri[0], P: 0, O: tri[2]},
		)
	}
	ts = append(ts, graph.Triple{S: 6, P: 0, O: 7}, graph.Triple{S: 7, P: 0, O: 8})
	g := graph.New(ts)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(0), graph.Var("z")),
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("z")),
	}
	res, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("found %d triangles, want 2: %v", len(res.Solutions), res.Solutions)
	}
}

func TestEvalStatsCountOperations(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}
	res, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Leaps == 0 || res.Stats.Binds == 0 || res.Stats.Seeks == 0 {
		t.Fatalf("stats not collected: %+v", res.Stats)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestLonelyOptimisationReducesLeaps(t *testing.T) {
	// A 4-leaf star: with the lonely fast path the leaves are enumerated,
	// without it each leaf value costs a leap. The paper's Section 4.2
	// claim, checked machine-independently via operation counts.
	rng := rand.New(rand.NewSource(47))
	g := testutil.RandomGraph(rng, 2000, 60, 3)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("c"), graph.Const(0), graph.Var("l1")),
		graph.TP(graph.Var("c"), graph.Const(1), graph.Var("l2")),
		graph.TP(graph.Var("c"), graph.Const(2), graph.Var("l3")),
	}
	on, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Evaluate(idx, q, Options{DisableLonely: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Solutions) != len(off.Solutions) {
		t.Fatalf("solutions differ: %d vs %d", len(on.Solutions), len(off.Solutions))
	}
	if len(on.Solutions) == 0 {
		t.Skip("star query had no solutions on this graph")
	}
	if on.Stats.Enumerations == 0 {
		t.Fatal("lonely fast path never used on a star query")
	}
	if on.Stats.Leaps >= off.Stats.Leaps {
		t.Errorf("lonely optimisation did not reduce leaps: %d with vs %d without",
			on.Stats.Leaps, off.Stats.Leaps)
	}
}
