// Package ltj implements the Leapfrog TrieJoin algorithm (Algorithm 1 of
// the paper, after Veldhuizen 2014) over an abstract trie-iterator
// interface, together with the paper's engineering refinements:
//
//   - the variable elimination order of Section 4.3: variables appearing
//     in several triple patterns are eliminated by increasing minimum
//     cardinality, preferring variables connected to those already chosen,
//     using the on-the-fly statistics the index provides;
//   - the lonely-variables optimisation of Section 4.2: variables that
//     appear in a single triple pattern are eliminated last by enumerating
//     the distinct values of the pattern's remaining range, rather than by
//     repeated leaps;
//   - result limits and timeouts, as used in the paper's benchmarks.
//
// Any index that can implement PatternIter — the ring, flat tries, B+-tree
// orders — plugs into the same engine, so the experiments compare indexing
// schemes, not join implementations.
package ltj

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/trieiter"
	"repro/internal/wavelet"
)

// PatternIter is the per-triple-pattern trie-iterator interface
// (Definition 2.1, extended with explicit binding state). Implementations
// maintain the set of triples matching one pattern under a stack of
// position bindings. The interface itself lives in package trieiter so
// index packages can name it without importing the engine; this alias
// keeps the engine-side name.
type PatternIter = trieiter.Iter

// ForkableIter is the optional capability behind Options.Parallelism:
// iterators that can cheaply clone their cursor state so worker
// goroutines explore disjoint parts of the binding tree over a shared
// read-only index. See trieiter.Forkable.
type ForkableIter = trieiter.Forkable

// Index creates trie-iterators for triple patterns.
type Index interface {
	NewPatternIter(tp graph.TriplePattern) PatternIter
}

// IndexFunc adapts a function to the Index interface.
type IndexFunc func(tp graph.TriplePattern) PatternIter

// NewPatternIter calls f.
func (f IndexFunc) NewPatternIter(tp graph.TriplePattern) PatternIter { return f(tp) }

// Options controls one evaluation.
type Options struct {
	// Limit caps the number of solutions reported; 0 means unlimited.
	// The paper's WGPB benchmark uses 1000.
	Limit int
	// Timeout aborts the evaluation after the given duration; 0 disables.
	// The paper uses 10 minutes.
	Timeout time.Duration
	// Context, when non-nil, cancels the evaluation when it is done —
	// in sequential and parallel mode alike. Cancellation surfaces as an
	// error wrapping both ErrCancelled and the context's Err(), so callers
	// can test errors.Is(err, context.Canceled) or
	// errors.Is(err, context.DeadlineExceeded). Like Timeout, the context
	// is polled every few hundred engine steps, so cancellation latency is
	// bounded by a short burst of index operations, not by solution
	// production.
	Context context.Context
	// Order forces an explicit variable elimination order (every variable
	// of the query must appear exactly once). Nil selects the automatic
	// order of Section 4.3.
	Order []string
	// DisableLonely turns off the lonely-variables optimisation
	// (ablation; Section 4.2).
	DisableLonely bool
	// DisableOrderHeuristic uses the query's first-use variable order
	// instead of the cardinality-based order (ablation; Section 4.3).
	DisableOrderHeuristic bool
	// DisableBatch turns off the batched radix-intersection lane
	// (DESIGN.md §13): join variables are then always eliminated by the
	// scalar leapfrog seek loop. The differential tests use this as the
	// oracle configuration (ablation).
	DisableBatch bool
	// BatchThreshold is the minimum candidate-range length (the smallest
	// iterator range over the join variable) at which the batched lane
	// engages; below it the scalar seek loop wins because a handful of
	// leaps beats walking the radix tree level by level. 0 means the
	// default of 16. The differential tests force 1 for coverage.
	BatchThreshold int
	// Parallelism sets the number of worker goroutines for intra-query
	// evaluation. 0 or 1 evaluates sequentially on the calling goroutine,
	// producing solutions in the engine's deterministic order. Values > 1
	// split the first eliminated variable's candidate domain across
	// workers (each running the same leapfrog search over forked
	// iterators), so the solution *multiset* is unchanged but the order
	// becomes nondeterministic. DefaultParallelism() is a reasonable
	// value for saturating the local machine.
	Parallelism int
}

// ErrTimeout is returned (wrapped in Result.Err) when the evaluation
// exceeded Options.Timeout. The solutions found so far are still returned.
var ErrTimeout = errors.New("ltj: evaluation timed out")

// ErrCancelled is returned when Options.Context was cancelled before the
// evaluation finished. The returned error also wraps the context's own
// Err(), so errors.Is works against context.Canceled and
// context.DeadlineExceeded.
var ErrCancelled = errors.New("ltj: evaluation cancelled")

// Result is the outcome of an evaluation.
type Result struct {
	Solutions []graph.Binding
	// TimedOut is set when the evaluation stopped due to Options.Timeout.
	TimedOut bool
	// Elapsed is the wall-clock evaluation time (excluding iterator setup
	// performed by the caller).
	Elapsed time.Duration
	// Stats counts the index operations the evaluation performed.
	Stats EvalStats
}

// EvalStats counts the trie-iterator operations of one evaluation; the
// ablation benchmarks use them to show, machine-independently, how the
// Section 4.2/4.3 optimisations cut work.
type EvalStats struct {
	// Leaps is the number of Leap calls issued.
	Leaps int
	// Binds is the number of Bind calls issued.
	Binds int
	// Enumerations is the number of values produced through the
	// lonely-variable fast path.
	Enumerations int
	// Seeks is the number of seek() intersections run.
	Seeks int
	// BatchDescents is the number of batched radix-intersection descents
	// run in place of scalar seek loops (DESIGN.md §13).
	BatchDescents int
	// BatchEmits is the number of candidate values those descents
	// emitted.
	BatchEmits int
}

// Evaluate runs LTJ for the basic graph pattern q over the index and
// collects solutions. See Stream for the streaming variant.
func Evaluate(idx Index, q graph.Pattern, opt Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	err := StreamStats(idx, q, opt, &res.Stats, func(b graph.Binding) bool {
		res.Solutions = append(res.Solutions, b.Clone())
		return opt.Limit <= 0 || len(res.Solutions) < opt.Limit
	})
	res.Elapsed = time.Since(start)
	if errors.Is(err, ErrTimeout) {
		res.TimedOut = true
		err = nil
	}
	return res, err
}

// Stream runs LTJ and calls emit for every solution, reusing one Binding
// value (callers must clone to retain it). emit returning false stops the
// evaluation. Stream returns ErrTimeout if the deadline was exceeded.
func Stream(idx Index, q graph.Pattern, opt Options, emit func(graph.Binding) bool) error {
	var st EvalStats
	return StreamStats(idx, q, opt, &st, emit)
}

// StreamStats is Stream with operation counting into stats.
func StreamStats(idx Index, q graph.Pattern, opt Options, stats *EvalStats, emit func(graph.Binding) bool) error {
	if len(q) == 0 {
		return nil
	}
	e := &evaluator{opt: opt, emit: emit, stats: stats}
	if opt.Timeout > 0 {
		e.deadline = time.Now().Add(opt.Timeout)
	}

	// Create one iterator per pattern; constants are bound at creation
	// (Lemma 3.6), so fully-constant patterns reduce to emptiness checks.
	for _, tp := range q {
		it := idx.NewPatternIter(tp)
		if len(tp.Vars()) == 0 {
			if it.Empty() {
				return nil // an unsatisfied ground pattern kills the query
			}
			continue
		}
		if it.Empty() {
			return nil
		}
		e.pats = append(e.pats, patternEntry{tp: tp, it: it})
	}
	if len(e.pats) == 0 {
		// All patterns ground and satisfied: the single empty solution.
		emit(graph.Binding{})
		return nil
	}

	order, err := e.chooseOrder(q)
	if err != nil {
		return err
	}
	e.order = order
	e.binding = graph.Binding{}

	if e.varIters, err = buildVarIters(order, e.pats); err != nil {
		return err
	}
	e.runBufs = make([][]wavelet.MatrixRange, len(order))
	if opt.Context != nil {
		e.ctx = opt.Context
	}
	if opt.Parallelism > 1 {
		err = e.searchParallel(idx)
	} else {
		err = e.search(0)
	}
	return e.finishErr(err)
}

// finishErr maps the engine-internal cancellation sentinel onto the
// caller-visible contract: a cancelled Options.Context surfaces as an
// error wrapping ErrCancelled and the context's Err(); internal
// cancellation (a satisfied Limit in parallel mode, emit returning false)
// is a clean stop.
func (e *evaluator) finishErr(err error) error {
	if err == errCancelled {
		err = nil
	}
	if err == nil && !e.stopped && e.opt.Context != nil {
		if cerr := e.opt.Context.Err(); cerr != nil {
			return fmt.Errorf("%w: %w", ErrCancelled, cerr)
		}
	}
	return err
}

// buildVarIters precomputes, per variable of the elimination order, which
// iterators mention it and at which positions.
func buildVarIters(order []string, pats []patternEntry) ([][]iterVar, error) {
	varIters := make([][]iterVar, len(order))
	for j, name := range order {
		for i := range pats {
			pos := pats[i].tp.Positions(name)
			if len(pos) > 0 {
				varIters[j] = append(varIters[j], iterVar{it: pats[i].it, positions: pos})
			}
		}
		if len(varIters[j]) == 0 {
			return nil, fmt.Errorf("ltj: variable %q not in query", name)
		}
	}
	return varIters, nil
}

type patternEntry struct {
	tp graph.TriplePattern
	it PatternIter
}

type iterVar struct {
	it        PatternIter
	positions []graph.Position
}

type evaluator struct {
	opt      Options
	emit     func(graph.Binding) bool
	pats     []patternEntry
	order    []string
	varIters [][]iterVar
	binding  graph.Binding
	runBufs  [][]wavelet.MatrixRange // per-depth range buffers of the batched lane
	deadline time.Time
	ctx      context.Context // cancellation: Options.Context, or the workers' derived context in parallel mode
	ticks    int
	stopped  bool // emit returned false
	stats    *EvalStats
}

// errCancelled aborts a parallel worker when another worker satisfied the
// limit (or the caller's emit stopped the evaluation). It never escapes
// the engine: searchParallel folds it into a clean stop.
var errCancelled = errors.New("ltj: evaluation cancelled")

// checkDeadline polls the clock and the cancellation context every few
// hundred steps.
func (e *evaluator) checkDeadline() error {
	if e.deadline.IsZero() && e.ctx == nil {
		return nil
	}
	e.ticks++
	// Compare against 1, not 0, so the very first tick already polls: a
	// query whose first seek loops for a long time inside one iterator
	// range must still observe the deadline before tick 256.
	if e.ticks&255 == 1 {
		if e.ctx != nil {
			select {
			case <-e.ctx.Done():
				return errCancelled
			default:
			}
		}
		if !e.deadline.IsZero() && time.Now().After(e.deadline) {
			return ErrTimeout
		}
	}
	return nil
}

// search implements leapfrog_search(μ, j) of Algorithm 1.
func (e *evaluator) search(j int) error {
	if j == len(e.order) {
		if !e.emit(e.binding) {
			e.stopped = true
		}
		return nil
	}
	name := e.order[j]
	ivs := e.varIters[j]

	// Lonely-variable fast path (Section 4.2): a variable in exactly one
	// pattern, at one position, whose iterator can enumerate that position.
	if !e.opt.DisableLonely && len(ivs) == 1 && len(ivs[0].positions) == 1 &&
		ivs[0].it.CanEnumerate(ivs[0].positions[0]) {
		iv := ivs[0]
		pos := iv.positions[0]
		var rerr error
		iv.it.Enumerate(pos, func(c graph.ID) bool {
			if rerr = e.checkDeadline(); rerr != nil {
				return false
			}
			e.stats.Enumerations++
			e.stats.Binds++
			iv.it.Bind(pos, c)
			e.binding[name] = c
			rerr = e.search(j + 1)
			delete(e.binding, name)
			iv.it.Unbind()
			return rerr == nil && !e.stopped
		})
		return rerr
	}

	// Batched radix-intersection lane (DESIGN.md §13): when every
	// iterator of this join variable exposes its candidates as one
	// wavelet range, a single multi-range descent replaces the seek loop.
	if rs, ok := e.batchRuns(j, ivs); ok {
		return e.searchBatched(j, name, ivs, rs)
	}

	// General seek loop (the while loop of leapfrog_search).
	c := graph.ID(0)
	for {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		v, ok, err := e.seek(ivs, c)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		// Bind v in every iterator at every occurrence.
		bound := 0
		alive := true
		for _, iv := range ivs {
			for _, pos := range iv.positions {
				e.stats.Binds++
				iv.it.Bind(pos, v)
				bound++
			}
			if iv.it.Empty() {
				alive = false
				break
			}
		}
		if alive {
			e.binding[name] = v
			err = e.search(j + 1)
			delete(e.binding, name)
		}
		// Unwind this variable's bindings (also on error paths).
		for _, iv := range ivs {
			for range iv.positions {
				if bound == 0 {
					break
				}
				iv.it.Unbind()
				bound--
			}
		}
		if err != nil {
			return err
		}
		if e.stopped {
			return nil
		}
		if v == graph.MaxID {
			return nil // the "c = v + 1" below would wrap to 0
		}
		c = v + 1
	}
}

// seek implements seek(μ, j, c) of Algorithm 1: the leapfrog intersection.
// It repeatedly leaps every iterator to the current candidate until all
// agree, or some iterator is exhausted.
//
//ringlint:hotpath
func (e *evaluator) seek(ivs []iterVar, c graph.ID) (graph.ID, bool, error) {
	e.stats.Seeks++
	for {
		if err := e.checkDeadline(); err != nil {
			return 0, false, err
		}
		allEqual := true
		for _, iv := range ivs {
			v, ok := e.leapVar(iv, c)
			if !ok {
				return 0, false, nil
			}
			if v != c {
				c = v
				allEqual = false
			}
		}
		if allEqual {
			return c, true, nil
		}
	}
}

// leapVar leaps one iterator for one variable. A variable occurring at
// several positions of the same pattern is handled by leap-then-verify:
// candidates from the first occurrence are checked by binding every
// occurrence, per the engineering note in DESIGN.md.
//
//ringlint:hotpath allow-dispatch -- the engine is index-generic; every iterator operation dispatches on PatternIter
func (e *evaluator) leapVar(iv iterVar, c graph.ID) (graph.ID, bool) {
	e.stats.Leaps++
	if len(iv.positions) == 1 {
		v, ok := iv.it.Leap(iv.positions[0], c)
		if ringdebugEnabled && ok {
			debugCheckLeapOrder(c, v)
		}
		return v, ok
	}
	for {
		v, ok := iv.it.Leap(iv.positions[0], c)
		if !ok {
			return 0, false
		}
		if ringdebugEnabled {
			debugCheckLeapOrder(c, v)
		}
		for _, pos := range iv.positions {
			iv.it.Bind(pos, v)
		}
		empty := iv.it.Empty()
		for range iv.positions {
			iv.it.Unbind()
		}
		if !empty {
			return v, true
		}
		if v == graph.MaxID {
			return 0, false // the "c = v + 1" below would wrap to 0
		}
		c = v + 1
	}
}
