package ltj

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

// sameOrderedSolutions asserts byte-identical solution streams: same
// length, same bindings, same order. The sequential batched lane emits
// candidates in exactly the scalar seek loop's order, so unlike the
// parallel comparison no multiset canonicalization is allowed here.
func sameOrderedSolutions(got, want []graph.Binding, vars []string) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d solutions, want %d", len(got), len(want))
	}
	for i := range got {
		for _, v := range vars {
			gv, gok := got[i][v]
			wv, wok := want[i][v]
			if gok != wok || gv != wv {
				return fmt.Sprintf("solution %d differs on %q: got %v want %v", i, v, got[i], want[i])
			}
		}
	}
	return ""
}

// batchedGraph is dense enough that constant-anchored patterns carry
// ranges above the default threshold, so the lane actually engages.
func batchedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return testutil.RandomGraph(rng, 5000, 60, 3)
}

// TestBatchedMatchesSequential is the engine-level differential test of
// the batched lane (DESIGN.md §13): with the threshold forced to 1 the
// batched engine must produce byte-identical ordered results to the
// scalar engine (DisableBatch) on random patterns of every shape —
// including repeated-variable patterns, where the lane must decline —
// and the same multiset as the parallel engine.
func TestBatchedMatchesSequential(t *testing.T) {
	g := batchedGraph(81)
	idx := ringIndex(g, ring.Options{})
	rng := rand.New(rand.NewSource(82))
	descents := 0
	for trial := 0; trial < 50; trial++ {
		nt := 1 + rng.Intn(4)
		nv := 1 + rng.Intn(4)
		q := testutil.RandomPattern(rng, g, nt, nv, 0.3, trial%5 == 0)
		scalar, err := Evaluate(idx, q, Options{DisableBatch: true})
		if err != nil {
			t.Fatalf("trial %d scalar %v: %v", trial, q, err)
		}
		for _, opt := range []Options{
			{BatchThreshold: 1},
			{}, // default threshold
		} {
			batched, err := Evaluate(idx, q, opt)
			if err != nil {
				t.Fatalf("trial %d batched %v: %v", trial, q, err)
			}
			if diff := sameOrderedSolutions(batched.Solutions, scalar.Solutions, q.Vars()); diff != "" {
				t.Fatalf("trial %d query %v (threshold %d): %s", trial, q, opt.BatchThreshold, diff)
			}
			descents += batched.Stats.BatchDescents
		}
		par, err := Evaluate(idx, q, Options{BatchThreshold: 1, Parallelism: 4})
		if err != nil {
			t.Fatalf("trial %d parallel %v: %v", trial, q, err)
		}
		if diff := testutil.SameSolutions(par.Solutions, scalar.Solutions, q.Vars()); diff != "" {
			t.Fatalf("trial %d parallel query %v: %s", trial, q, diff)
		}
	}
	if descents == 0 {
		t.Fatal("batched lane never engaged across 50 trials — differential test is vacuous")
	}
}

// TestBatchedLimit: with a Limit the batched stream must be the same
// prefix the scalar stream produces (same order ⇒ same prefix).
func TestBatchedLimit(t *testing.T) {
	g := batchedGraph(83)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
	}
	full, err := Evaluate(idx, q, Options{DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 7, 50} {
		lim, err := Evaluate(idx, q, Options{BatchThreshold: 1, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		want := full.Solutions
		if len(want) > limit {
			want = want[:limit]
		}
		if diff := sameOrderedSolutions(lim.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("limit %d: %s", limit, diff)
		}
	}
}

// TestBatchedTimeoutPartial: a timeout mid-run surfaces as TimedOut with
// the solutions found so far — a prefix of the full batched stream.
func TestBatchedTimeoutPartial(t *testing.T) {
	g := batchedGraph(84)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("y"), graph.Const(2), graph.Var("w")),
	}
	full, err := Evaluate(idx, q, Options{BatchThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Evaluate(idx, q, Options{BatchThreshold: 1, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !part.TimedOut {
		t.Skip("evaluation finished within a nanosecond; nothing to assert")
	}
	if len(part.Solutions) > len(full.Solutions) {
		t.Fatalf("timed-out run produced %d solutions, full run %d", len(part.Solutions), len(full.Solutions))
	}
	if diff := sameOrderedSolutions(part.Solutions, full.Solutions[:len(part.Solutions)], q.Vars()); diff != "" {
		t.Fatalf("timed-out solutions are not a prefix of the full stream: %s", diff)
	}
}

// TestBatchedContextCancel: cancellation inside the batched descent
// surfaces as ErrCancelled wrapping the context error.
func TestBatchedContextCancel(t *testing.T) {
	g := batchedGraph(85)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Evaluate(idx, q, Options{BatchThreshold: 1, Context: ctx})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	// Parallel mode composes with the batched producer the same way.
	_, err = Evaluate(idx, q, Options{BatchThreshold: 1, Parallelism: 4, Context: ctx})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel pre-cancelled context: err = %v", err)
	}
}

// TestBatchedLaneEngagement pins when the lane runs: it must engage on a
// dense 2-pattern join variable, stay off under DisableBatch, and fall
// back to scalar leaps for single-pattern variables.
func TestBatchedLaneEngagement(t *testing.T) {
	g := batchedGraph(86)
	idx := ringIndex(g, ring.Options{})
	join := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
	}
	on, err := Evaluate(idx, join, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.BatchDescents == 0 || on.Stats.BatchEmits == 0 {
		t.Fatalf("batched lane did not engage on a dense join: %+v", on.Stats)
	}
	off, err := Evaluate(idx, join, Options{DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.BatchDescents != 0 || off.Stats.BatchEmits != 0 {
		t.Fatalf("DisableBatch still recorded batched work: %+v", off.Stats)
	}
	if off.Stats.Seeks == 0 {
		t.Fatalf("scalar lane recorded no seeks: %+v", off.Stats)
	}
	// A single-pattern (lonely) variable never batches.
	lonely := graph.Pattern{graph.TP(graph.Const(g.Triples()[0].S), graph.Var("p"), graph.Var("o"))}
	res, err := Evaluate(idx, lonely, Options{BatchThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BatchDescents != 0 {
		t.Fatalf("batched lane engaged on a single-pattern variable: %+v", res.Stats)
	}
}

// FuzzBatchedLTJ fuzzes the differential property: for an arbitrary
// (graph seed, pattern shape) the batched engine agrees with the scalar
// engine ordered-exactly and with the parallel engine as a multiset.
func FuzzBatchedLTJ(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), uint8(40))
	f.Add(int64(7), uint8(3), uint8(3), uint8(10))
	f.Add(int64(99), uint8(4), uint8(4), uint8(90))
	f.Add(int64(-5), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nt, nv, sel uint8) {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 400+rng.Intn(800), graph.ID(10+rng.Intn(50)), graph.ID(1+rng.Intn(4)))
		idx := ringIndex(g, ring.Options{})
		// Floor pConst at 0.1: numVars=1 with pConst=0 and no repeats
		// allowed makes RandomPattern spin forever (every candidate is
		// (?v0, ·, ?v0)).
		q := testutil.RandomPattern(rng, g, 1+int(nt%4), 1+int(nv%4), 0.1+float64(sel%85)/100, seed%3 == 0)
		scalar, err := Evaluate(idx, q, Options{DisableBatch: true, Limit: 2000})
		if err != nil {
			t.Fatalf("scalar %v: %v", q, err)
		}
		batched, err := Evaluate(idx, q, Options{BatchThreshold: 1, Limit: 2000})
		if err != nil {
			t.Fatalf("batched %v: %v", q, err)
		}
		if diff := sameOrderedSolutions(batched.Solutions, scalar.Solutions, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
		par, err := Evaluate(idx, q, Options{BatchThreshold: 1, Parallelism: 2})
		if err != nil {
			t.Fatalf("parallel %v: %v", q, err)
		}
		if len(scalar.Solutions) < 2000 { // Limit hit ⇒ multisets may differ
			if diff := testutil.SameSolutions(par.Solutions, scalar.Solutions, q.Vars()); diff != "" {
				t.Fatalf("parallel query %v: %s", q, diff)
			}
		}
	})
}
