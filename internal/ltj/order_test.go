package ltj

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

// orderFor runs the order computation for a query over the paper graph.
func orderFor(t *testing.T, q graph.Pattern, opt Options) []string {
	t.Helper()
	g := testutil.PaperGraph()
	r := ring.New(g, ring.Options{})
	e := &evaluator{opt: opt}
	for _, tp := range q {
		e.pats = append(e.pats, patternEntry{tp: tp, it: r.NewPatternState(tp)})
	}
	order, err := e.chooseOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	return order
}

func TestLonelyVariablesComeLast(t *testing.T) {
	// x joins the two patterns; y and z are lonely.
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
	}
	order := orderFor(t, q, Options{})
	if order[0] != "x" {
		t.Fatalf("order = %v, want x first", order)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 variables", order)
	}
}

func TestCardinalityOrderPrefersSelective(t *testing.T) {
	// adv (0) has 4 triples, nom (1) has 5: the variable whose cheapest
	// pattern is smaller is eliminated first.
	q := graph.Pattern{
		graph.TP(graph.Var("a"), graph.Const(0), graph.Var("shared")),
		graph.TP(graph.Var("b"), graph.Const(1), graph.Var("shared")),
		graph.TP(graph.Var("a"), graph.Const(2), graph.Var("b")),
	}
	order := orderFor(t, q, Options{})
	// All three variables are join variables; 'a' and 'shared' touch the
	// 4-triple adv pattern, so one of them must lead.
	if order[0] != "a" && order[0] != "shared" {
		t.Fatalf("order = %v, want a or shared first (smallest c_min)", order)
	}
}

func TestConnectivityPreference(t *testing.T) {
	// Two components: (a,b) over adv and (c,d) over nom; after picking from
	// one component, the next variable should stay in it when possible.
	q := graph.Pattern{
		graph.TP(graph.Var("a"), graph.Const(0), graph.Var("b")),
		graph.TP(graph.Var("b"), graph.Const(2), graph.Var("a")),
		graph.TP(graph.Var("c"), graph.Const(1), graph.Var("d")),
		graph.TP(graph.Var("d"), graph.Const(2), graph.Var("c")),
	}
	order := orderFor(t, q, Options{})
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	firstComponentFirst := pos["a"] < pos["c"] == (order[0] == "a" || order[0] == "b")
	// The two variables of the starting component must be adjacent in the
	// order (connectivity keeps components together).
	var gap int
	if order[0] == "a" || order[0] == "b" {
		gap = pos["a"] - pos["b"]
	} else {
		gap = pos["c"] - pos["d"]
	}
	if gap != 1 && gap != -1 {
		t.Fatalf("order = %v: starting component not contiguous", order)
	}
	_ = firstComponentFirst
}

func TestDisableOrderHeuristicUsesFirstUse(t *testing.T) {
	q := graph.Pattern{
		graph.TP(graph.Var("z"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(1), graph.Var("x")),
	}
	order := orderFor(t, q, Options{DisableOrderHeuristic: true})
	if !reflect.DeepEqual(order, []string{"z", "y", "x"}) {
		t.Fatalf("order = %v, want first-use [z y x]", order)
	}
}

func TestLonelyChainDirections(t *testing.T) {
	lonely := map[string]bool{"y": true, "z": true, "w": true}
	cases := []struct {
		name string
		tp   graph.TriplePattern
		want []string
	}{
		// Constant subject: run = {S}; chain goes backward O then P.
		{"s-const", graph.TP(graph.Const(1), graph.Var("z"), graph.Var("y")), []string{"y", "z"}},
		// Constant predicate: run = {P}; chain S then O.
		{"p-const", graph.TP(graph.Var("y"), graph.Const(1), graph.Var("z")), []string{"y", "z"}},
		// Constant object: run = {O}; chain P then S.
		{"o-const", graph.TP(graph.Var("z"), graph.Var("y"), graph.Const(1)), []string{"y", "z"}},
		// Two constants (s,p): only the object is lonely.
		{"sp-const", graph.TP(graph.Const(1), graph.Const(0), graph.Var("y")), []string{"y"}},
		// All variables, all lonely: subject first (bound by leap), then
		// backward o, p.
		{"all-vars", graph.TP(graph.Var("y"), graph.Var("z"), graph.Var("w")), []string{"y", "w", "z"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := lonelyChain(c.tp, lonely)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("lonelyChain(%v) = %v, want %v", c.tp, got, c.want)
			}
		})
	}
}

func TestLonelyChainSkipsJoinVariables(t *testing.T) {
	// x is a join variable (not lonely): it belongs to the run, so only y
	// is chained, backward-adjacent to the run {P,O}... here run = {S
	// const, x at P}, lonely y at O.
	lonely := map[string]bool{"y": true}
	tp := graph.TP(graph.Const(1), graph.Var("x"), graph.Var("y"))
	got := lonelyChain(tp, lonely)
	if !reflect.DeepEqual(got, []string{"y"}) {
		t.Fatalf("lonelyChain = %v, want [y]", got)
	}
}

func TestChooseOrderChecksExplicit(t *testing.T) {
	g := testutil.PaperGraph()
	r := ring.New(g, ring.Options{})
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y"))}
	e := &evaluator{opt: Options{Order: []string{"x", "x"}}}
	for _, tp := range q {
		e.pats = append(e.pats, patternEntry{tp: tp, it: r.NewPatternState(tp)})
	}
	if _, err := e.chooseOrder(q); err == nil {
		t.Fatal("duplicate variable in explicit order accepted")
	}
}
