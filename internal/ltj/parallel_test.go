package ltj

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

// TestParallelMatchesSequential is the engine-level differential test:
// for random patterns of every shape, the parallel evaluation must
// produce exactly the sequential multiset at every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := testutil.RandomGraph(rng, 150, 18, 3)
	idx := ringIndex(g, ring.Options{})
	for trial := 0; trial < 60; trial++ {
		nt := 1 + rng.Intn(4)
		nv := 1 + rng.Intn(4)
		q := testutil.RandomPattern(rng, g, nt, nv, 0.3, false)
		seq, err := Evaluate(idx, q, Options{})
		if err != nil {
			t.Fatalf("trial %d sequential %v: %v", trial, q, err)
		}
		for _, p := range []int{2, 4, 8} {
			par, err := Evaluate(idx, q, Options{Parallelism: p})
			if err != nil {
				t.Fatalf("trial %d P=%d %v: %v", trial, p, q, err)
			}
			if diff := testutil.SameSolutions(par.Solutions, seq.Solutions, q.Vars()); diff != "" {
				t.Fatalf("trial %d P=%d query %v: %s", trial, p, q, diff)
			}
		}
	}
}

// TestParallelLimit checks the Limit short-circuit under parallelism:
// exactly min(Limit, total) solutions come back, and every one of them
// belongs to the sequential solution multiset (which subset arrives is
// scheduling-dependent).
func TestParallelLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := testutil.RandomGraph(rng, 200, 12, 3)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Var("q"), graph.Var("z")),
	}
	seq, err := Evaluate(idx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(seq.Solutions)
	if total < 50 {
		t.Fatalf("test graph too sparse: %d solutions", total)
	}
	want := graph.CanonicalizeBindings(seq.Solutions, q.Vars())
	wantCount := map[string]int{}
	for _, k := range want {
		wantCount[k]++
	}
	for _, p := range []int{2, 4, 8} {
		for _, limit := range []int{1, 7, 25, total, total + 10} {
			res, err := Evaluate(idx, q, Options{Parallelism: p, Limit: limit})
			if err != nil {
				t.Fatalf("P=%d limit=%d: %v", p, limit, err)
			}
			wantN := limit
			if total < wantN {
				wantN = total
			}
			if len(res.Solutions) != wantN {
				t.Fatalf("P=%d limit=%d: got %d solutions, want %d", p, limit, len(res.Solutions), wantN)
			}
			gotCount := map[string]int{}
			for _, k := range graph.CanonicalizeBindings(res.Solutions, q.Vars()) {
				gotCount[k]++
			}
			for k, n := range gotCount {
				if n > wantCount[k] {
					t.Fatalf("P=%d limit=%d: solution %s returned %d times, sequential has %d",
						p, limit, k, n, wantCount[k])
				}
			}
		}
	}
}

// TestParallelStatsAggregation: with no limit or timeout, the parallel
// run performs exactly the sequential run's index operations — the
// producer replays search(0)'s candidate generation and the workers
// replay its per-value descent — so the merged per-worker counters must
// equal the sequential counters.
func TestParallelStatsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := testutil.RandomGraph(rng, 150, 15, 3)
	idx := ringIndex(g, ring.Options{})
	for trial := 0; trial < 20; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(4), 0.3, false)
		seq, err := Evaluate(idx, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Evaluate(idx, q, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats != seq.Stats {
			t.Fatalf("trial %d query %v: parallel stats %+v != sequential %+v",
				trial, q, par.Stats, seq.Stats)
		}
	}
}

// TestStreamTimeoutFirstTick is the regression test for the deadline
// polling bug: the tick counter used to be checked with ticks&255 == 0,
// so the first 255 work steps never polled and a query could blow far
// past an already-expired deadline. With the fix the very first step
// polls: an expired deadline must stop the evaluation before any
// solution is produced, sequentially and in parallel.
func TestStreamTimeoutFirstTick(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	g := testutil.RandomGraph(rng, 300, 20, 3)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Var("q"), graph.Var("z")),
	}
	for _, p := range []int{0, 2, 4} {
		opt := Options{Timeout: time.Nanosecond, Parallelism: p}
		time.Sleep(time.Microsecond) // ensure the deadline has passed
		res, err := Evaluate(idx, q, opt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.TimedOut {
			t.Fatalf("P=%d: expired deadline not reported as timeout", p)
		}
		if len(res.Solutions) != 0 {
			t.Fatalf("P=%d: %d solutions produced after the deadline, want 0",
				p, len(res.Solutions))
		}
	}
}

// listIter is a minimal list-backed PatternIter used to exercise domain
// corner cases the ring cannot represent (a graph containing
// graph.MaxID would need a universe of 2^32 values). It deliberately
// reports CanEnumerate=false so the engine takes the general seek loop.
type listIter struct {
	tp    graph.TriplePattern
	cur   []graph.Triple
	stack [][]graph.Triple
}

func newListIter(ts []graph.Triple, tp graph.TriplePattern) *listIter {
	it := &listIter{tp: tp}
	for _, t := range ts {
		if !tp.S.IsVar && t.S != tp.S.Value {
			continue
		}
		if !tp.P.IsVar && t.P != tp.P.Value {
			continue
		}
		if !tp.O.IsVar && t.O != tp.O.Value {
			continue
		}
		it.cur = append(it.cur, t)
	}
	return it
}

func at(t graph.Triple, pos graph.Position) graph.ID {
	switch pos {
	case graph.PosS:
		return t.S
	case graph.PosP:
		return t.P
	default:
		return t.O
	}
}

func (it *listIter) Count() int  { return len(it.cur) }
func (it *listIter) Empty() bool { return len(it.cur) == 0 }

func (it *listIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	best, ok := graph.ID(0), false
	for _, t := range it.cur {
		v := at(t, pos)
		if v >= c && (!ok || v < best) {
			best, ok = v, true
		}
	}
	return best, ok
}

func (it *listIter) Bind(pos graph.Position, c graph.ID) {
	it.stack = append(it.stack, it.cur)
	var next []graph.Triple
	for _, t := range it.cur {
		if at(t, pos) == c {
			next = append(next, t)
		}
	}
	it.cur = next
}

func (it *listIter) Unbind() {
	it.cur = it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
}

func (it *listIter) CanEnumerate(graph.Position) bool              { return false }
func (it *listIter) Enumerate(graph.Position, func(graph.ID) bool) {}

// Fork gives the stub the ForkableIter capability; the triple slices are
// never mutated, so sharing them across forks is safe.
func (it *listIter) Fork() PatternIter {
	cp := &listIter{tp: it.tp, cur: it.cur}
	cp.stack = append([][]graph.Triple(nil), it.stack...)
	return cp
}

// TestParallelMaxIDBinding binds the extreme identifier graph.MaxID.
// The seek loops advance with "c = v + 1" after accepting v; without the
// MaxID termination check that increment wraps to 0 and the scan
// restarts forever. The test must terminate and report the solutions
// that bind MaxID, sequentially and in parallel.
func TestParallelMaxIDBinding(t *testing.T) {
	ts := []graph.Triple{
		{S: 1, P: 0, O: 5},
		{S: 1, P: 0, O: graph.MaxID},
		{S: graph.MaxID, P: 0, O: 5},
		{S: graph.MaxID, P: 1, O: graph.MaxID},
	}
	idx := IndexFunc(func(tp graph.TriplePattern) PatternIter {
		return newListIter(ts, tp)
	})
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y"))}
	for _, p := range []int{0, 3} {
		done := make(chan *Result, 1)
		fail := make(chan error, 1)
		go func() {
			res, err := Evaluate(idx, q, Options{Parallelism: p, DisableLonely: true})
			if err != nil {
				fail <- err
				return
			}
			done <- res
		}()
		select {
		case err := <-fail:
			t.Fatalf("P=%d: %v", p, err)
		case res := <-done:
			if len(res.Solutions) != 3 {
				t.Fatalf("P=%d: got %d solutions, want 3: %v", p, len(res.Solutions), res.Solutions)
			}
			sawMax := false
			for _, b := range res.Solutions {
				if b["x"] == graph.MaxID || b["y"] == graph.MaxID {
					sawMax = true
				}
			}
			if !sawMax {
				t.Fatalf("P=%d: no solution binds graph.MaxID: %v", p, res.Solutions)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("P=%d: evaluation did not terminate (MaxID wraparound?)", p)
		}
	}
}

// TestParallelStreamOrderIndependence: the streaming callback runs on
// the calling goroutine only, and sorting the nondeterministic parallel
// stream reproduces the deterministic sequential stream.
func TestParallelStreamOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := testutil.RandomGraph(rng, 120, 12, 3)
	idx := ringIndex(g, ring.Options{})
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Var("p"), graph.Var("z")),
	}
	collect := func(p int) []string {
		var got []graph.Binding
		err := Stream(idx, q, Options{Parallelism: p}, func(b graph.Binding) bool {
			got = append(got, b.Clone())
			return true
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		keys := graph.CanonicalizeBindings(got, q.Vars())
		sort.Strings(keys)
		return keys
	}
	seq := collect(0)
	if len(seq) == 0 {
		t.Fatal("query has no solutions; pick a denser seed")
	}
	for _, p := range []int{2, 4, 8} {
		par := collect(p)
		if len(par) != len(seq) {
			t.Fatalf("P=%d: %d solutions, want %d", p, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("P=%d: sorted stream diverges at %d: %s != %s", p, i, par[i], seq[i])
			}
		}
	}
}
