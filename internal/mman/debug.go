package mman

import "fmt"

// Runtime assertion hooks for the ringdebug build tag, called behind
// `if ringdebugEnabled { ... }` so normal builds eliminate them entirely.
// They are the dynamic counterpart of the refpair static analyzer: the
// analyzer proves every acquire has a release on every path; these
// assertions prove the counts actually balance at run time — including
// through code paths (finalizers, snapshot installs) the per-function
// analysis cannot follow.

// debugCountRetainLocked and debugCountReleaseLocked maintain the
// lifetime totals (r.mu held).
func (r *Region) debugCountRetainLocked()  { r.debugRetains++ }
func (r *Region) debugCountReleaseLocked() { r.debugReleases++ }

// debugCheckBalanceLocked asserts, at the release that unmaps, that the
// lifetime totals balance: the initial Map reference plus every Retain
// equals every Release. refs reaching zero already implies this when all
// mutations go through Retain/Release; a mismatch means something
// touched refs directly.
func (r *Region) debugCheckBalanceLocked() {
	if 1+r.debugRetains != r.debugReleases {
		panic(fmt.Sprintf("ringdebug: mman: refcount imbalance unmapping %s: 1 map + %d retains != %d releases",
			r.path, r.debugRetains, r.debugReleases))
	}
}

// debugCheckAlive asserts the region still holds references — a view
// read after the last Release is a use-after-unmap, which on a real
// mapping is a SIGSEGV waiting for an unlucky page.
func (r *Region) debugCheckAlive(op string) {
	r.mu.Lock()
	refs := r.refs
	r.mu.Unlock()
	if refs <= 0 {
		panic(fmt.Sprintf("ringdebug: mman: %s on %s after the region was unmapped", op, r.path))
	}
}
