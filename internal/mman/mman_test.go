package mman

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMapReadsContents(t *testing.T) {
	want := bytes.Repeat([]byte("ring index bytes "), 1000)
	path := writeFile(t, "idx", want)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if r.Len() != len(want) || !bytes.Equal(r.Bytes(), want) {
		t.Fatalf("mapped %d bytes, mismatch with %d written", r.Len(), len(want))
	}
	if r.Path() != path {
		t.Errorf("Path = %q, want %q", r.Path(), path)
	}
}

func TestRefcountLifecycle(t *testing.T) {
	path := writeFile(t, "idx", []byte("0123456789abcdef"))
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refs() != 1 {
		t.Fatalf("fresh region has %d refs, want 1", r.Refs())
	}
	if r.Retain() != r || r.Refs() != 2 {
		t.Fatalf("after Retain: %d refs, want 2", r.Refs())
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if r.Refs() != 1 {
		t.Fatalf("after first Release: %d refs, want 1", r.Refs())
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if r.Refs() != 0 {
		t.Fatalf("after final Release: %d refs, want 0", r.Refs())
	}
	if err := r.Release(); err == nil {
		t.Error("over-release did not error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Retain after unmap did not panic")
			}
		}()
		r.Retain()
	}()
}

func TestEmptyFile(t *testing.T) {
	path := writeFile(t, "empty", nil)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", r.Len())
	}
	if r.Mapped() {
		t.Error("empty file reported as a real mapping")
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFile(t *testing.T) {
	if _, err := Map(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("mapping a missing file did not error")
	}
}

// TestBytesSurviveRetain checks that the contents remain readable while
// any reference is held, which is what the checkpoint-install path
// relies on when an old ring and a new snapshot briefly share a region.
func TestBytesSurviveRetain(t *testing.T) {
	want := []byte("shared across generations")
	path := writeFile(t, "idx", want)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Retain()
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Bytes(), want) {
		t.Fatal("contents changed while a reference was held")
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
}
