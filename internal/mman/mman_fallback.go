//go:build !linux && !darwin

package mman

import "os"

// mapFile on platforms without a wired-up mmap reads the file into an
// anonymous slice: same bytes, same Region lifecycle, no shared pages.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) == 0 {
		return nil, false, nil
	}
	return data, false, nil
}

func unmapBytes([]byte) error { return nil }
