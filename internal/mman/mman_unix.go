//go:build linux || darwin

package mman

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and hints random access (index queries
// touch rank directories and payload words in no particular order, so
// readahead would only pollute the page cache).
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, nil
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("mman: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("mman: mmap %s: %w", path, err)
	}
	// Best-effort hint; the mapping works the same without it.
	_ = syscall.Madvise(data, syscall.MADV_RANDOM)
	return data, true, nil
}

func unmapBytes(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
