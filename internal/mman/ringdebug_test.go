//go:build ringdebug

package mman

import (
	"os"
	"path/filepath"
	"testing"
)

func debugRegion(t *testing.T) *Region {
	t.Helper()
	path := filepath.Join(t.TempDir(), "region.bin")
	if err := os.WriteFile(path, []byte("ringdebug region payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDebugBalancedLifetime: a balanced retain/release history unmaps
// without tripping the balance assertion.
func TestDebugBalancedLifetime(t *testing.T) {
	r := debugRegion(t)
	r.Retain()
	r.Retain()
	for i := 0; i < 3; i++ {
		if err := r.Release(); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if r.Refs() != 0 {
		t.Fatalf("refs = %d after balanced lifetime, want 0", r.Refs())
	}
}

// TestDebugUseAfterUnmapPanics: reading a view after the last release
// must panic under ringdebug instead of waiting for an unlucky page
// fault in production.
func TestDebugUseAfterUnmapPanics(t *testing.T) {
	r := debugRegion(t)
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() after the last Release did not panic under ringdebug")
		}
	}()
	_ = r.Bytes()
}

// TestDebugLenAfterUnmapPanics: Len is a view read too.
func TestDebugLenAfterUnmapPanics(t *testing.T) {
	r := debugRegion(t)
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Len() after the last Release did not panic under ringdebug")
		}
	}()
	_ = r.Len()
}
