// Package mman memory-maps immutable index files for the zero-copy load
// path. A Region is a read-only byte view of one file: on platforms with
// mmap support the bytes are a shared file mapping (so load cost is page
// faults, N processes share one physical copy, and cold pages never
// touch the heap); elsewhere the file is read into an anonymous slice,
// which is semantically identical but pays the copy.
//
// Lifetime: a Region is reference-counted. Map returns it with one
// reference; Retain/Release adjust the count and the mapping is unmapped
// when it reaches zero. Slices handed out by Bytes alias the mapping and
// are invisible to the garbage collector — they do NOT keep the Region
// alive, and the mapping is deliberately never unmapped by a Region
// finalizer: a forgotten Release leaks address space until process exit,
// which is strictly safer than unmapping under a live structure whose
// aliases the collector cannot see. Owners that want reclamation tie the
// Region to the structure built over it (the persist layer sets a
// finalizer on the view-loaded ring that releases its Region; the static
// server holds its Region for the process lifetime).
package mman

import (
	"fmt"
	"sync"
)

// Region is a read-only view of one file, either memory-mapped or read
// into an anonymous slice (see Mapped).
type Region struct {
	data   []byte //ringlint:guarded-by mu
	path   string // immutable after Map
	mapped bool   //ringlint:guarded-by mu

	mu   sync.Mutex
	refs int //ringlint:guarded-by mu

	// Lifetime totals for the ringdebug refcount-balance assertion;
	// only maintained when ringdebugEnabled.
	debugRetains  int //ringlint:guarded-by mu
	debugReleases int //ringlint:guarded-by mu
}

// Map opens path read-only and maps (or on fallback platforms, reads)
// its contents. The returned Region holds one reference.
func Map(path string) (*Region, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	return &Region{data: data, path: path, mapped: mapped, refs: 1}, nil
}

// Bytes returns the mapped contents. The slice aliases the mapping: it
// must not be written to, and it becomes invalid once the refcount
// reaches zero.
func (r *Region) Bytes() []byte {
	if ringdebugEnabled {
		r.debugCheckAlive("Bytes")
	}
	return r.data //ringlint:allow guardedby -- caller holds a reference; data only changes when refs reaches zero
}

// Len returns the mapped length in bytes.
func (r *Region) Len() int {
	if ringdebugEnabled {
		r.debugCheckAlive("Len")
	}
	return len(r.data) //ringlint:allow guardedby -- caller holds a reference; data only changes when refs reaches zero
}

// Mapped reports whether the bytes are a real file mapping (false on
// fallback platforms and for empty files).
func (r *Region) Mapped() bool { return r.mapped } //ringlint:allow guardedby -- caller holds a reference; mapped only changes when refs reaches zero

// Path returns the file the region was mapped from.
func (r *Region) Path() string { return r.path }

// Retain adds a reference and returns r for chaining.
func (r *Region) Retain() *Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refs <= 0 {
		panic("mman: Retain after the region was unmapped")
	}
	r.refs++
	if ringdebugEnabled {
		r.debugCountRetainLocked()
	}
	return r
}

// Release drops a reference, unmapping when the count reaches zero. It
// is an error to release more times than the region was retained.
func (r *Region) Release() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refs <= 0 {
		return fmt.Errorf("mman: Release of already-unmapped region %s", r.path)
	}
	r.refs--
	if ringdebugEnabled {
		r.debugCountReleaseLocked()
	}
	if r.refs > 0 {
		return nil
	}
	if ringdebugEnabled {
		r.debugCheckBalanceLocked()
	}
	return r.unmapLocked()
}

// Refs returns the current reference count (for tests and stats).
func (r *Region) Refs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refs
}

func (r *Region) unmapLocked() error {
	data := r.data
	r.data = nil
	if !r.mapped {
		return nil
	}
	r.mapped = false
	return unmapBytes(data)
}
