//go:build !ringdebug

package mman

// ringdebugEnabled gates the runtime assertion hooks in debug.go. Without
// the ringdebug build tag the constant is false and every assertion block
// is eliminated as dead code.
const ringdebugEnabled = false
