//go:build ringdebug

package mman

// ringdebugEnabled gates the runtime assertion hooks in debug.go. This
// build carries the ringdebug tag, so the assertions are compiled in.
const ringdebugEnabled = true
