package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPositionCycle(t *testing.T) {
	if PosS.Next() != PosP || PosP.Next() != PosO || PosO.Next() != PosS {
		t.Error("Next cycle broken")
	}
	if PosS.Prev() != PosO || PosO.Prev() != PosP || PosP.Prev() != PosS {
		t.Error("Prev cycle broken")
	}
	for _, p := range []Position{PosS, PosP, PosO} {
		if p.Next().Prev() != p || p.Prev().Next() != p {
			t.Errorf("Next/Prev not inverse at %v", p)
		}
	}
}

func TestNewDedupsAndSorts(t *testing.T) {
	g := New([]Triple{{3, 0, 1}, {1, 0, 2}, {3, 0, 1}, {1, 0, 2}, {2, 1, 0}})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", g.Len())
	}
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.S > b.S || (a.S == b.S && a.P > b.P) || (a.S == b.S && a.P == b.P && a.O >= b.O) {
			t.Fatalf("triples not strictly sorted at %d: %v %v", i, a, b)
		}
	}
	if g.NumSO() != 4 || g.NumP() != 2 {
		t.Errorf("domains = (%d,%d), want (4,2)", g.NumSO(), g.NumP())
	}
}

func TestContains(t *testing.T) {
	g := New([]Triple{{1, 0, 2}, {2, 1, 0}, {3, 0, 1}})
	for _, tr := range g.Triples() {
		if !g.Contains(tr) {
			t.Errorf("Contains(%v) = false for present triple", tr)
		}
	}
	for _, tr := range []Triple{{0, 0, 0}, {1, 1, 2}, {9, 0, 2}} {
		if g.Contains(tr) {
			t.Errorf("Contains(%v) = true for absent triple", tr)
		}
	}
}

func TestPatternAccessors(t *testing.T) {
	tp := TP(Var("x"), Const(7), Var("x"))
	if tp.NumConstants() != 1 {
		t.Errorf("NumConstants = %d, want 1", tp.NumConstants())
	}
	if got := tp.Vars(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("Vars = %v, want [x]", got)
	}
	if got := tp.Positions("x"); !reflect.DeepEqual(got, []Position{PosS, PosO}) {
		t.Errorf("Positions(x) = %v", got)
	}
	if tp.Term(PosP).IsVar || tp.Term(PosP).Value != 7 {
		t.Error("Term(PosP) wrong")
	}
}

func TestPatternVarsOrder(t *testing.T) {
	q := Pattern{
		TP(Var("b"), Const(0), Var("a")),
		TP(Var("a"), Const(1), Var("c")),
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Errorf("Vars = %v, want first-use order [b a c]", got)
	}
}

// nobelGraph builds the paper's Figure 3 graph, 0-based:
// 0 Bohr, 1 Strutt, 2 Thomson, 3 Thorne, 4 Wheeler, 5 Nobel;
// predicates 0 adv, 1 nom, 2 win. 13 distinct triples, as in Figure 6.
func nobelGraph() *Graph {
	const (
		bohr, strutt, thomson, thorne, wheeler, nobel = 0, 1, 2, 3, 4, 5
		adv, nom, win                                 = 0, 1, 2
	)
	return New([]Triple{
		{bohr, adv, thomson},
		{thomson, adv, strutt},
		{wheeler, adv, bohr},
		{thorne, adv, wheeler},
		{nobel, nom, bohr},
		{nobel, nom, thomson},
		{nobel, nom, thorne},
		{nobel, nom, wheeler},
		{nobel, nom, strutt},
		{nobel, win, bohr},
		{nobel, win, thomson},
		{nobel, win, thorne},
		{nobel, win, strutt},
	})
}

func TestEvaluatePaperExample(t *testing.T) {
	// Figure 4: x --win--> y, x --nom--> z, z --adv--> y over the Nobel
	// graph. With our 0-based ids: win=2, nom=1, adv=0.
	g := nobelGraph()
	q := Pattern{
		TP(Var("x"), Const(2), Var("y")),
		TP(Var("x"), Const(1), Var("z")),
		TP(Var("z"), Const(0), Var("y")),
	}
	sols := g.Evaluate(q, 0)
	// x is always Nobel(5); solutions pair a winner y with its nominated
	// adviser z (z --adv--> y present, Nobel wins y, Nobel nominates z).
	want := map[[3]ID]bool{
		{5, 2, 0}: true, // y=Thomson, z=Bohr   (Bohr adv Thomson)
		{5, 1, 2}: true, // y=Strutt,  z=Thomson (Thomson adv Strutt)
		{5, 0, 4}: true, // y=Bohr,    z=Wheeler (Wheeler adv Bohr)
	}
	if len(sols) != len(want) {
		t.Fatalf("got %d solutions, want %d: %v", len(sols), len(want), sols)
	}
	for _, b := range sols {
		key := [3]ID{b["x"], b["y"], b["z"]}
		if !want[key] {
			t.Errorf("unexpected solution %v", b)
		}
	}
}

func TestEvaluateRepeatedVariableInPattern(t *testing.T) {
	g := New([]Triple{{1, 0, 1}, {1, 0, 2}, {3, 1, 3}})
	q := Pattern{TP(Var("x"), Var("p"), Var("x"))}
	sols := g.Evaluate(q, 0)
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2 (self-loops)", len(sols))
	}
	for _, b := range sols {
		if b["x"] != 1 && b["x"] != 3 {
			t.Errorf("unexpected x = %d", b["x"])
		}
	}
}

func TestEvaluateLimit(t *testing.T) {
	g := New([]Triple{{0, 0, 0}, {1, 0, 1}, {2, 0, 2}, {3, 0, 3}})
	q := Pattern{TP(Var("x"), Const(0), Var("y"))}
	if got := len(g.Evaluate(q, 2)); got != 2 {
		t.Errorf("limit 2: got %d solutions", got)
	}
	if got := len(g.Evaluate(q, 0)); got != 4 {
		t.Errorf("no limit: got %d solutions", got)
	}
}

func TestEvaluateGroundPattern(t *testing.T) {
	g := New([]Triple{{1, 0, 2}})
	if got := len(g.Evaluate(Pattern{TP(Const(1), Const(0), Const(2))}, 0)); got != 1 {
		t.Errorf("present ground pattern: %d solutions, want 1", got)
	}
	if got := len(g.Evaluate(Pattern{TP(Const(2), Const(0), Const(1))}, 0)); got != 0 {
		t.Errorf("absent ground pattern: %d solutions, want 0", got)
	}
}

func TestCanonicalizeBindings(t *testing.T) {
	bs := []Binding{{"x": 2, "y": 1}, {"x": 1, "y": 2}}
	got := CanonicalizeBindings(bs, []string{"x", "y"})
	if !reflect.DeepEqual(got, []string{"x=1;y=2;", "x=2;y=1;"}) {
		t.Errorf("canonicalized = %v", got)
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{"x": 1}
	c := b.Clone()
	c["x"] = 2
	if b["x"] != 1 {
		t.Error("Clone aliases the original")
	}
}

func RandomGraph(rng *rand.Rand, n int, numSO, numP ID) *Graph {
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{
			S: ID(rng.Intn(int(numSO))),
			P: ID(rng.Intn(int(numP))),
			O: ID(rng.Intn(int(numSO))),
		}
	}
	return NewWithDomains(ts, numSO, numP)
}

func TestRandomGraphDomains(t *testing.T) {
	g := RandomGraph(rand.New(rand.NewSource(1)), 100, 20, 3)
	if g.NumSO() != 20 || g.NumP() != 3 {
		t.Errorf("domains = (%d,%d), want (20,3)", g.NumSO(), g.NumP())
	}
	for _, tr := range g.Triples() {
		if tr.S >= 20 || tr.O >= 20 || tr.P >= 3 {
			t.Fatalf("triple out of domain: %v", tr)
		}
	}
}
