// Package graph defines the data model shared by every index in this
// repository: dictionary-encoded triples, basic graph patterns (triple
// patterns with variables), and a naive reference evaluator used as the
// test oracle for the ring and all baselines.
//
// Following the paper (Section 4.1), subjects and objects share one
// identifier space [0, NumSO) and predicates use a separate space
// [0, NumP). A graph is a set — duplicate triples are discarded.
package graph

import (
	"fmt"
	"sort"
)

// ID is a dictionary-encoded constant. Subjects/objects and predicates live
// in separate ID spaces.
type ID = uint32

// MaxID is the largest representable identifier. Search loops that advance
// with "c = v + 1" after accepting a candidate v must treat v == MaxID as
// the end of the domain: the increment would wrap around to 0 and restart
// the scan, so MaxID doubles as the loop's termination sentinel.
const MaxID = ^ID(0)

// Triple is a subject–predicate–object edge s --p--> o.
type Triple struct {
	S, P, O ID
}

// Position identifies a component of a triple or triple pattern.
type Position int

// The three triple positions, in cyclic order S → P → O → S.
const (
	PosS Position = iota
	PosP
	PosO
)

// String returns "s", "p" or "o".
func (p Position) String() string {
	switch p {
	case PosS:
		return "s"
	case PosP:
		return "p"
	case PosO:
		return "o"
	}
	return fmt.Sprintf("Position(%d)", int(p))
}

// Next returns the position that cyclically follows p (s→p→o→s).
func (p Position) Next() Position { return (p + 1) % 3 }

// Prev returns the position that cyclically precedes p (s←p←o←s, i.e. the
// BWT "backward" direction).
func (p Position) Prev() Position { return (p + 2) % 3 }

// Term is one component of a triple pattern: either a constant ID or a
// named variable.
type Term struct {
	IsVar bool
	Value ID     // constant, valid when !IsVar
	Name  string // variable name, valid when IsVar
}

// Const returns a constant term.
func Const(v ID) Term { return Term{Value: v} }

// Var returns a variable term.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// String formats the term for diagnostics.
func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Name
	}
	return fmt.Sprintf("%d", t.Value)
}

// TriplePattern is a triple whose components may be variables.
type TriplePattern struct {
	S, P, O Term
}

// TP is shorthand for constructing a TriplePattern.
func TP(s, p, o Term) TriplePattern { return TriplePattern{S: s, P: p, O: o} }

// Term returns the term at the given position.
func (tp TriplePattern) Term(pos Position) Term {
	switch pos {
	case PosS:
		return tp.S
	case PosP:
		return tp.P
	case PosO:
		return tp.O
	}
	panic("graph: invalid position")
}

// String formats the pattern as "(s, p, o)".
func (tp TriplePattern) String() string {
	return fmt.Sprintf("(%s, %s, %s)", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variable names of the pattern, in s,p,o order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pos := range []Position{PosS, PosP, PosO} {
		if t := tp.Term(pos); t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// NumConstants returns how many of the three components are constants.
func (tp TriplePattern) NumConstants() int {
	n := 0
	for _, pos := range []Position{PosS, PosP, PosO} {
		if !tp.Term(pos).IsVar {
			n++
		}
	}
	return n
}

// Positions returns the positions (in s,p,o order) where the named variable
// occurs in the pattern.
func (tp TriplePattern) Positions(name string) []Position {
	var out []Position
	for _, pos := range []Position{PosS, PosP, PosO} {
		if t := tp.Term(pos); t.IsVar && t.Name == name {
			out = append(out, pos)
		}
	}
	return out
}

// Pattern is a basic graph pattern: a set of triple patterns evaluated as a
// conjunctive (join) query.
type Pattern []TriplePattern

// Vars returns the distinct variable names of the pattern, in first-use order.
func (q Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range q {
		for _, name := range tp.Vars() {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

// Binding is one solution: an assignment of values to the pattern's
// variables.
type Binding map[string]ID

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Graph is an in-memory set of triples with its domain sizes. It is the
// input to every index builder and the substrate of the naive evaluator.
type Graph struct {
	triples []Triple // sorted (s,p,o), deduplicated
	numSO   ID       // subjects/objects are in [0, numSO)
	numP    ID       // predicates are in [0, numP)
}

// New builds a graph from triples, sorting and deduplicating them. The
// identifier spaces are sized from the data ((max value)+1), or larger if
// the caller provides explicit minimums via NewWithDomains.
func New(triples []Triple) *Graph {
	return NewWithDomains(triples, 0, 0)
}

// NewWithDomains builds a graph whose ID spaces are at least [0, minSO) and
// [0, minP).
func NewWithDomains(triples []Triple, minSO, minP ID) *Graph {
	ts := make([]Triple, len(triples))
	copy(ts, triples)
	SortSPO(ts)
	ts = dedup(ts)
	g := &Graph{triples: ts, numSO: minSO, numP: minP}
	for _, t := range ts {
		if t.S >= g.numSO {
			g.numSO = t.S + 1
		}
		if t.O >= g.numSO {
			g.numSO = t.O + 1
		}
		if t.P >= g.numP {
			g.numP = t.P + 1
		}
	}
	return g
}

func dedup(ts []Triple) []Triple {
	if len(ts) == 0 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// SortSPO sorts triples by (subject, predicate, object).
func SortSPO(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

// Len returns the number of (distinct) triples.
func (g *Graph) Len() int { return len(g.triples) }

// NumSO returns the size of the shared subject/object ID space.
func (g *Graph) NumSO() ID { return g.numSO }

// NumP returns the size of the predicate ID space.
func (g *Graph) NumP() ID { return g.numP }

// Triples returns the graph's triples sorted by (s,p,o). The slice is
// shared; callers must not mutate it.
func (g *Graph) Triples() []Triple { return g.triples }

// Contains reports whether the triple is in the graph, by binary search.
func (g *Graph) Contains(t Triple) bool {
	i := sort.Search(len(g.triples), func(i int) bool {
		a := g.triples[i]
		if a.S != t.S {
			return a.S >= t.S
		}
		if a.P != t.P {
			return a.P >= t.P
		}
		return a.O >= t.O
	})
	return i < len(g.triples) && g.triples[i] == t
}

// matches reports whether triple t matches pattern tp under binding b,
// and if so returns b extended with tp's variables.
func matches(tp TriplePattern, t Triple, b Binding) (Binding, bool) {
	vals := [3]ID{t.S, t.P, t.O}
	ext := b
	cloned := false
	for i, pos := range []Position{PosS, PosP, PosO} {
		term := tp.Term(pos)
		if !term.IsVar {
			if term.Value != vals[i] {
				return nil, false
			}
			continue
		}
		if v, ok := ext[term.Name]; ok {
			if v != vals[i] {
				return nil, false
			}
			continue
		}
		if !cloned {
			ext = b.Clone()
			cloned = true
		}
		ext[term.Name] = vals[i]
	}
	return ext, true
}

// Evaluate computes all solutions of the basic graph pattern q over g by
// exhaustive backtracking. It is intended as a correctness oracle for the
// indexed evaluators, not for performance. A non-positive limit means
// unlimited.
func (g *Graph) Evaluate(q Pattern, limit int) []Binding {
	var out []Binding
	if len(q) == 0 {
		return out
	}
	var rec func(i int, b Binding) bool
	rec = func(i int, b Binding) bool {
		if i == len(q) {
			out = append(out, b.Clone())
			return limit <= 0 || len(out) < limit
		}
		for _, t := range g.triples {
			if ext, ok := matches(q[i], t, b); ok {
				if !rec(i+1, ext) {
					return false
				}
			}
		}
		return true
	}
	rec(0, Binding{})
	return out
}

// CanonicalizeBindings returns a deterministic, sorted string form of a
// solution multiset, for comparing evaluator outputs in tests.
func CanonicalizeBindings(bs []Binding, vars []string) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		s := ""
		for _, v := range vars {
			s += fmt.Sprintf("%s=%d;", v, b[v])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}
