package dict

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

var sample = []StringTriple{
	{"bohr", "adv", "thomson"},
	{"nobel", "win", "bohr"},
	{"nobel", "nom", "thomson"},
}

func TestBuildSharedSpace(t *testing.T) {
	d, enc := Build(sample)
	// bohr appears as subject and object: one ID.
	sID, ok1 := d.EncodeSO("bohr")
	if !ok1 {
		t.Fatal("bohr missing")
	}
	if enc[0].S != sID || enc[1].O != sID {
		t.Error("bohr does not share one ID across subject and object positions")
	}
	if d.NumSO() != 3 { // bohr, nobel, thomson
		t.Errorf("NumSO = %d, want 3", d.NumSO())
	}
	if d.NumP() != 3 { // adv, nom, win
		t.Errorf("NumP = %d, want 3", d.NumP())
	}
}

func TestIDsAreLexicographic(t *testing.T) {
	d, _ := Build(sample)
	a, _ := d.EncodeSO("bohr")
	b, _ := d.EncodeSO("nobel")
	c, _ := d.EncodeSO("thomson")
	if !(a < b && b < c) {
		t.Errorf("IDs not lexicographic: bohr=%d nobel=%d thomson=%d", a, b, c)
	}
	p1, _ := d.EncodeP("adv")
	p2, _ := d.EncodeP("nom")
	p3, _ := d.EncodeP("win")
	if !(p1 < p2 && p2 < p3) {
		t.Errorf("predicate IDs not lexicographic: %d %d %d", p1, p2, p3)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d, _ := Build(sample)
	for _, s := range []string{"bohr", "nobel", "thomson"} {
		id, ok := d.EncodeSO(s)
		if !ok {
			t.Fatalf("EncodeSO(%q) missing", s)
		}
		got, ok := d.DecodeSO(id)
		if !ok || got != s {
			t.Errorf("DecodeSO(EncodeSO(%q)) = %q", s, got)
		}
	}
	if _, ok := d.EncodeSO("absent"); ok {
		t.Error("EncodeSO accepted an absent constant")
	}
	if _, ok := d.DecodeSO(99); ok {
		t.Error("DecodeSO accepted an out-of-range ID")
	}
	if _, ok := d.DecodeP(99); ok {
		t.Error("DecodeP accepted an out-of-range ID")
	}
}

func TestDecodeBinding(t *testing.T) {
	d, _ := Build(sample)
	x, _ := d.EncodeSO("nobel")
	p, _ := d.EncodeP("win")
	got := d.DecodeBinding(graph.Binding{"x": x, "pr": p}, map[string]bool{"pr": true})
	if got["x"] != "nobel" || got["pr"] != "win" {
		t.Errorf("DecodeBinding = %v", got)
	}
}

func TestParseTSV(t *testing.T) {
	input := "# comment\nbohr adv thomson\n\nnobel\twin\tbohr\n"
	ts, err := ParseTSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0] != (StringTriple{"bohr", "adv", "thomson"}) ||
		ts[1] != (StringTriple{"nobel", "win", "bohr"}) {
		t.Errorf("ParseTSV = %v", ts)
	}
	if _, err := ParseTSV(strings.NewReader("only two\n")); err == nil {
		t.Error("accepted malformed line")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	d, _ := Build(sample)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSO() != d.NumSO() || got.NumP() != d.NumP() {
		t.Fatal("sizes differ after round-trip")
	}
	for _, s := range []string{"bohr", "nobel", "thomson"} {
		a, _ := d.EncodeSO(s)
		b, ok := got.EncodeSO(s)
		if !ok || a != b {
			t.Errorf("EncodeSO(%q) differs after round-trip", s)
		}
	}
}

// TestSerializationHostileTerms holds the length-prefixed framing to
// its contract: terms are arbitrary byte strings (live mode lets any
// JSON string become one), so embedded newlines, colons, or binary
// bytes must survive a round-trip without shifting later IDs.
func TestSerializationHostileTerms(t *testing.T) {
	terms := []string{"plain", "with\nnewline", "with:colon", "12:34\n56", "\x00\xff binary", ""}
	d, _ := Build(nil)
	for _, s := range terms[:len(terms)-1] { // AddSO of "" is valid too, but Build-style use never sees it
		d.AddSO(s)
	}
	d.AddP("p\nq")
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSO() != d.NumSO() || got.NumP() != d.NumP() {
		t.Fatalf("sizes differ after round-trip: so %d/%d p %d/%d",
			got.NumSO(), d.NumSO(), got.NumP(), d.NumP())
	}
	for _, s := range terms[:len(terms)-1] {
		want, _ := d.EncodeSO(s)
		if id, ok := got.EncodeSO(s); !ok || id != want {
			t.Errorf("EncodeSO(%q) = %d,%v after round-trip, want %d", s, id, ok, want)
		}
	}
	if id, ok := got.EncodeP("p\nq"); !ok || id != 0 {
		t.Errorf("EncodeP(%q) = %d,%v after round-trip, want 0", "p\nq", id, ok)
	}
}

func TestSerializationCorrupt(t *testing.T) {
	d, _ := Build(sample)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Error("accepted truncated dictionary")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	huge := []byte(magicHdr + "1 0\n99999999999999999999:x\n")
	if _, err := Read(bytes.NewReader(huge)); err == nil {
		t.Error("accepted oversized term length")
	}
}

func TestEmptyDictionary(t *testing.T) {
	d, enc := Build(nil)
	if d.NumSO() != 0 || d.NumP() != 0 || len(enc) != 0 {
		t.Error("empty build not empty")
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("round-trip of empty dictionary: %v", err)
	}
}
