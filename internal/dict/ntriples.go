package dict

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads the W3C N-Triples format: one triple per line,
// `<subject> <predicate> <object> .`, where subjects are IRIs or blank
// nodes, predicates are IRIs, and objects are IRIs, blank nodes, or
// literals (with optional language tag or datatype). Comment lines start
// with '#'. Terms are kept in their surface syntax (including the angle
// brackets and quotes) so that round-tripping is loss-free; the
// dictionary treats them as opaque strings.
func ParseNTriples(r io.Reader) ([]StringTriple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []StringTriple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTLine(line)
		if err != nil {
			return nil, fmt.Errorf("dict: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dict: scan: %w", err)
	}
	return out, nil
}

func parseNTLine(line string) (StringTriple, error) {
	var t StringTriple
	rest := line
	var err error
	if t.S, rest, err = ntTerm(rest, false); err != nil {
		return t, fmt.Errorf("subject: %w", err)
	}
	if t.P, rest, err = ntTerm(rest, false); err != nil {
		return t, fmt.Errorf("predicate: %w", err)
	}
	if !strings.HasPrefix(t.P, "<") {
		return t, fmt.Errorf("predicate %q is not an IRI", t.P)
	}
	if t.O, rest, err = ntTerm(rest, true); err != nil {
		return t, fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return t, fmt.Errorf("missing terminating '.' (got %q)", rest)
	}
	return t, nil
}

// ntTerm consumes one term from the front of s, returning it and the rest.
func ntTerm(s string, allowLiteral bool) (string, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return s[:end+1], s[end+1:], nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return "", "", fmt.Errorf("malformed blank node")
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			return "", "", fmt.Errorf("truncated blank node")
		}
		return s[:end], s[end:], nil
	case '"':
		if !allowLiteral {
			return "", "", fmt.Errorf("literal not allowed here")
		}
		// Find the closing quote, honouring backslash escapes.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated literal")
		}
		end := i + 1
		// Optional language tag or datatype.
		if end < len(s) && s[end] == '@' {
			for end < len(s) && s[end] != ' ' && s[end] != '\t' {
				end++
			}
		} else if end+1 < len(s) && s[end] == '^' && s[end+1] == '^' {
			close := strings.IndexByte(s[end:], '>')
			if close < 0 {
				return "", "", fmt.Errorf("unterminated datatype IRI")
			}
			end += close + 1
		}
		return s[:end], s[end:], nil
	default:
		return "", "", fmt.Errorf("unexpected term start %q", s[0])
	}
}
