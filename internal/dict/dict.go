// Package dict implements the dictionary encoding between string constants
// and the numeric identifiers the indexes operate on. Following the
// paper's engineering (Section 4.1), subjects and objects share a single
// identifier space — an entity that appears both as a subject and as an
// object gets one ID — while predicates use a separate, smaller space.
// Identifiers are assigned in lexicographic order, so ID comparisons agree
// with string comparisons within each space.
//
// A dictionary can also grow after construction (AddSO/AddP): live-update
// layers append terms as they arrive, so appended IDs follow arrival
// order, not lexicographic order. Serialization preserves the append
// order, which keeps persisted encoded triples stable across reloads.
package dict

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unsafe"

	"repro/internal/graph"
)

// StringTriple is a triple over raw string constants.
type StringTriple struct {
	S, P, O string
}

// Dictionary maps string constants to dense numeric identifiers and back.
type Dictionary struct {
	so    []string // sorted; index = ID
	p     []string // sorted; index = ID
	soIDs map[string]graph.ID
	pIDs  map[string]graph.ID

	// View-loaded dictionaries defer the encode-side maps to first use:
	// decoding (ID -> string) needs only the slices, so a server that maps
	// an index pays for the maps on the first query with a constant, not
	// at load. Build and Read populate the maps eagerly; ensureMaps is
	// then a no-op behind an atomic load.
	mapOnce sync.Once
}

// ensureMaps builds the string -> ID maps if View deferred them. Safe
// for concurrent readers; mutators (AddSO/AddP) already require external
// synchronization.
func (d *Dictionary) ensureMaps() {
	d.mapOnce.Do(func() {
		if d.soIDs != nil {
			return
		}
		d.soIDs = make(map[string]graph.ID, len(d.so))
		d.pIDs = make(map[string]graph.ID, len(d.p))
		for i, s := range d.so {
			d.soIDs[s] = graph.ID(i)
		}
		for i, s := range d.p {
			d.pIDs[s] = graph.ID(i)
		}
	})
}

// Build constructs a dictionary from the given triples and returns it along
// with the encoded triples (in input order; duplicates preserved).
func Build(triples []StringTriple) (*Dictionary, []graph.Triple) {
	soSet := map[string]struct{}{}
	pSet := map[string]struct{}{}
	for _, t := range triples {
		soSet[t.S] = struct{}{}
		soSet[t.O] = struct{}{}
		pSet[t.P] = struct{}{}
	}
	d := &Dictionary{
		so:    make([]string, 0, len(soSet)),
		p:     make([]string, 0, len(pSet)),
		soIDs: make(map[string]graph.ID, len(soSet)),
		pIDs:  make(map[string]graph.ID, len(pSet)),
	}
	for s := range soSet {
		d.so = append(d.so, s)
	}
	for s := range pSet {
		d.p = append(d.p, s)
	}
	sort.Strings(d.so)
	sort.Strings(d.p)
	for i, s := range d.so {
		d.soIDs[s] = graph.ID(i)
	}
	for i, s := range d.p {
		d.pIDs[s] = graph.ID(i)
	}
	encoded := make([]graph.Triple, len(triples))
	for i, t := range triples {
		encoded[i] = graph.Triple{S: d.soIDs[t.S], P: d.pIDs[t.P], O: d.soIDs[t.O]}
	}
	return d, encoded
}

// NumSO returns the size of the subject/object space.
func (d *Dictionary) NumSO() graph.ID { return graph.ID(len(d.so)) }

// NumP returns the size of the predicate space.
func (d *Dictionary) NumP() graph.ID { return graph.ID(len(d.p)) }

// AddSO returns the ID of a subject/object constant, appending it to the
// space if absent. Appended IDs follow arrival order; callers that share
// a dictionary across goroutines must provide their own synchronization
// (the persistence layer holds its writer lock here).
func (d *Dictionary) AddSO(s string) graph.ID {
	d.ensureMaps()
	if id, ok := d.soIDs[s]; ok {
		return id
	}
	id := graph.ID(len(d.so))
	d.so = append(d.so, s)
	d.soIDs[s] = id
	return id
}

// AddP returns the ID of a predicate constant, appending it to the space
// if absent. See AddSO for the ordering and synchronization contract.
func (d *Dictionary) AddP(s string) graph.ID {
	d.ensureMaps()
	if id, ok := d.pIDs[s]; ok {
		return id
	}
	id := graph.ID(len(d.p))
	d.p = append(d.p, s)
	d.pIDs[s] = id
	return id
}

// EncodeSO returns the ID of a subject/object constant.
func (d *Dictionary) EncodeSO(s string) (graph.ID, bool) {
	d.ensureMaps()
	id, ok := d.soIDs[s]
	return id, ok
}

// EncodeP returns the ID of a predicate constant.
func (d *Dictionary) EncodeP(s string) (graph.ID, bool) {
	d.ensureMaps()
	id, ok := d.pIDs[s]
	return id, ok
}

// DecodeSO returns the string of a subject/object ID.
func (d *Dictionary) DecodeSO(id graph.ID) (string, bool) {
	if int(id) >= len(d.so) {
		return "", false
	}
	return d.so[id], true
}

// DecodeP returns the string of a predicate ID.
func (d *Dictionary) DecodeP(id graph.ID) (string, bool) {
	if int(id) >= len(d.p) {
		return "", false
	}
	return d.p[id], true
}

// DecodeBinding renders a solution with its positions' spaces: predicate
// variables are those listed in predVars; everything else decodes in the
// subject/object space.
func (d *Dictionary) DecodeBinding(b graph.Binding, predVars map[string]bool) map[string]string {
	out := make(map[string]string, len(b))
	for k, v := range b {
		var s string
		var ok bool
		if predVars[k] {
			s, ok = d.DecodeP(v)
		} else {
			s, ok = d.DecodeSO(v)
		}
		if !ok {
			s = fmt.Sprintf("#%d", v)
		}
		out[k] = s
	}
	return out
}

// ParseTSV reads whitespace/tab-separated "s p o" lines (comments start
// with '#'; blank lines ignored) into string triples.
func ParseTSV(r io.Reader) ([]StringTriple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []StringTriple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("dict: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		out = append(out, StringTriple{S: fields[0], P: fields[1], O: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dict: scan: %w", err)
	}
	return out, nil
}

// --- serialization ---

const magicHdr = "RINGDICT2\n"

// maxTermBytes bounds a single term on load; a larger length prefix is
// corruption (or hostile input), not a real term.
const maxTermBytes = 1 << 24

// WriteTo serializes the dictionary as a small text-framed format.
// Terms are length-prefixed (`<len>:<bytes>\n`), not newline-delimited:
// live mode admits arbitrary strings as terms, and a term containing
// '\n' must not shift every later ID on reload.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(magicHdr)); err != nil {
		return n, err
	}
	if err := count(fmt.Fprintf(bw, "%d %d\n", len(d.so), len(d.p))); err != nil {
		return n, err
	}
	writeTerms := func(terms []string) error {
		for _, s := range terms {
			if err := count(fmt.Fprintf(bw, "%d:", len(s))); err != nil {
				return err
			}
			if err := count(bw.WriteString(s)); err != nil {
				return err
			}
			if err := count(bw.WriteString("\n")); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeTerms(d.so); err != nil {
		return n, err
	}
	if err := writeTerms(d.p); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read deserializes a dictionary written by WriteTo.
func Read(r io.Reader) (*Dictionary, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magicHdr))
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != magicHdr {
		return nil, errors.New("dict: bad magic")
	}
	var nSO, nP int
	if _, err := fmt.Fscanf(br, "%d %d\n", &nSO, &nP); err != nil {
		return nil, fmt.Errorf("dict: bad counts: %w", err)
	}
	if nSO < 0 || nP < 0 {
		return nil, errors.New("dict: negative counts")
	}
	if uint64(nSO) > math.MaxUint32 || uint64(nP) > math.MaxUint32 {
		return nil, errors.New("dict: counts exceed the ID space")
	}
	d := &Dictionary{
		soIDs: make(map[string]graph.ID, min(nSO, 1<<16)),
		pIDs:  make(map[string]graph.ID, min(nP, 1<<16)),
	}
	readTerms := func(n int) ([]string, error) {
		// Grow by append rather than trusting the header count with one
		// up-front allocation: truncated or hostile input errors out long
		// before a fabricated count can force a huge slice.
		out := make([]string, 0, min(n, 1<<16))
		for i := 0; i < n; i++ {
			prefix, err := br.ReadString(':')
			if err != nil {
				return nil, fmt.Errorf("dict: truncated at entry %d: %w", i, err)
			}
			tlen, err := strconv.Atoi(strings.TrimSuffix(prefix, ":"))
			if err != nil || tlen < 0 || tlen > maxTermBytes {
				return nil, fmt.Errorf("dict: entry %d: bad term length %q", i, strings.TrimSuffix(prefix, ":"))
			}
			term := make([]byte, tlen)
			if _, err := io.ReadFull(br, term); err != nil {
				return nil, fmt.Errorf("dict: truncated at entry %d: %w", i, err)
			}
			if b, err := br.ReadByte(); err != nil || b != '\n' {
				return nil, fmt.Errorf("dict: entry %d: missing terminator", i)
			}
			out = append(out, string(term))
		}
		return out, nil
	}
	var err error
	if d.so, err = readTerms(nSO); err != nil {
		return nil, err
	}
	if d.p, err = readTerms(nP); err != nil {
		return nil, err
	}
	for i, s := range d.so {
		d.soIDs[s] = graph.ID(i)
	}
	for i, s := range d.p {
		d.pIDs[s] = graph.ID(i)
	}
	return d, nil
}

// asString views a byte slice as a string without copying. The result
// aliases b and must not outlive it.
func asString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// View deserializes a dictionary from an in-memory buffer, typically the
// dictionary section of a memory-mapped index. Unlike Read it performs
// no per-term allocation: term strings alias b, and the string -> ID
// maps are deferred to the first Encode/Add call (see ensureMaps), so a
// view load is one linear scan over the section. It accepts and rejects
// exactly the inputs Read does (FuzzViewStore holds the two paths to the
// same verdicts).
//
// b must stay valid (mapped, unmodified) for the lifetime of the
// dictionary; terms handed out by Decode* alias it.
func View(b []byte) (*Dictionary, error) {
	if len(b) < len(magicHdr) || string(b[:len(magicHdr)]) != magicHdr {
		return nil, errors.New("dict: bad magic")
	}
	// The count line reuses Fscanf over a RuneScanner so its acceptance
	// quirks (signs, spacing) match Read's byte for byte; the reader's
	// remaining length then yields the exact resume offset.
	br := bytes.NewReader(b[len(magicHdr):])
	var nSO, nP int
	if _, err := fmt.Fscanf(br, "%d %d\n", &nSO, &nP); err != nil {
		return nil, fmt.Errorf("dict: bad counts: %w", err)
	}
	if nSO < 0 || nP < 0 {
		return nil, errors.New("dict: negative counts")
	}
	if uint64(nSO) > math.MaxUint32 || uint64(nP) > math.MaxUint32 {
		return nil, errors.New("dict: counts exceed the ID space")
	}
	pos := len(b) - br.Len()
	viewTerms := func(n int) ([]string, error) {
		// Capacity grows by append for the same reason Read's does: a
		// fabricated count must not force a huge allocation.
		out := make([]string, 0, min(n, 1<<16))
		for i := 0; i < n; i++ {
			rel := bytes.IndexByte(b[pos:], ':')
			if rel < 0 {
				return nil, fmt.Errorf("dict: truncated at entry %d: %w", i, io.EOF)
			}
			prefix := b[pos : pos+rel]
			tlen, err := strconv.Atoi(asString(prefix))
			if err != nil || tlen < 0 || tlen > maxTermBytes {
				return nil, fmt.Errorf("dict: entry %d: bad term length %q", i, prefix)
			}
			pos += rel + 1
			if tlen > len(b)-pos {
				return nil, fmt.Errorf("dict: truncated at entry %d: %w", i, io.ErrUnexpectedEOF)
			}
			term := asString(b[pos : pos+tlen])
			pos += tlen
			if pos >= len(b) || b[pos] != '\n' {
				return nil, fmt.Errorf("dict: entry %d: missing terminator", i)
			}
			pos++
			out = append(out, term)
		}
		return out, nil
	}
	d := &Dictionary{}
	var err error
	if d.so, err = viewTerms(nSO); err != nil {
		return nil, err
	}
	if d.p, err = viewTerms(nP); err != nil {
		return nil, err
	}
	return d, nil
}
