package dict

import (
	"strings"
	"testing"
)

func TestParseNTriplesBasic(t *testing.T) {
	input := `# a comment
<http://ex.org/bohr> <http://ex.org/adv> <http://ex.org/thomson> .
_:b1 <http://ex.org/name> "Niels Bohr" .
<http://ex.org/bohr> <http://ex.org/born> "1885"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/bohr> <http://ex.org/label> "Bohr"@da .
`
	ts, err := ParseNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("parsed %d triples, want 4", len(ts))
	}
	if ts[0].S != "<http://ex.org/bohr>" || ts[0].O != "<http://ex.org/thomson>" {
		t.Errorf("triple 0 = %+v", ts[0])
	}
	if ts[1].S != "_:b1" || ts[1].O != `"Niels Bohr"` {
		t.Errorf("triple 1 = %+v", ts[1])
	}
	if ts[2].O != `"1885"^^<http://www.w3.org/2001/XMLSchema#integer>` {
		t.Errorf("triple 2 object = %q", ts[2].O)
	}
	if ts[3].O != `"Bohr"@da` {
		t.Errorf("triple 3 object = %q", ts[3].O)
	}
}

func TestParseNTriplesEscapedQuote(t *testing.T) {
	input := `<http://e/s> <http://e/p> "say \"hi\" now" .` + "\n"
	ts, err := ParseNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O != `"say \"hi\" now"` {
		t.Errorf("object = %q", ts[0].O)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	cases := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,            // missing dot
		`<http://e/s "lit" <http://e/o> .`,                  // unterminated IRI
		`<http://e/s> "lit" <http://e/o> .`,                 // literal predicate
		`"lit" <http://e/p> <http://e/o> .`,                 // literal subject
		`<http://e/s> <http://e/p> "unterminated .`,         // unterminated literal
		`<http://e/s> <http://e/p> .`,                       // missing object
		`<http://e/s> <http://e/p> "x"^^<http://no-close .`, // bad datatype
		`!bad <http://e/p> <http://e/o> .`,                  // junk term
	}
	for _, c := range cases {
		if _, err := ParseNTriples(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("accepted malformed line %q", c)
		}
	}
}

func TestParseNTriplesIntoStore(t *testing.T) {
	input := `<http://e/a> <http://e/knows> <http://e/b> .
<http://e/b> <http://e/knows> <http://e/a> .
`
	ts, err := ParseNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	d, enc := Build(ts)
	if d.NumSO() != 2 || d.NumP() != 1 {
		t.Fatalf("domains = (%d,%d)", d.NumSO(), d.NumP())
	}
	if len(enc) != 2 {
		t.Fatalf("encoded %d", len(enc))
	}
}
