package dict

import (
	"bytes"
	"strings"
	"testing"
	"unsafe"
)

func serializedDict(t *testing.T) (*Dictionary, []byte) {
	t.Helper()
	d, _ := Build([]StringTriple{
		{S: "alice", P: "knows", O: "bob"},
		{S: "bob", P: "knows", O: "carol"},
		{S: "carol", P: "likes", O: "alice"},
		{S: "d\nangerous", P: "p:with:colons", O: ""},
	})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return d, buf.Bytes()
}

// TestViewMatchesRead checks the view loader against the reader on the
// same image: identical term tables, and identical encode/decode
// behavior once the lazy maps materialize.
func TestViewMatchesRead(t *testing.T) {
	_, data := serializedDict(t)
	rd, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	vd, err := View(data)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if vd.NumSO() != rd.NumSO() || vd.NumP() != rd.NumP() {
		t.Fatalf("sizes: view (%d,%d), read (%d,%d)", vd.NumSO(), vd.NumP(), rd.NumSO(), rd.NumP())
	}
	for id := 0; id < int(rd.NumSO()); id++ {
		want, _ := rd.DecodeSO(uint32(id))
		got, ok := vd.DecodeSO(uint32(id))
		if !ok || got != want {
			t.Fatalf("DecodeSO(%d): view %q, read %q", id, got, want)
		}
		// The lazy encode maps must invert the table exactly.
		back, ok := vd.EncodeSO(want)
		if !ok || int(back) != id {
			t.Fatalf("EncodeSO(%q): view %d ok=%v, want %d", want, back, ok, id)
		}
	}
	for id := 0; id < int(rd.NumP()); id++ {
		want, _ := rd.DecodeP(uint32(id))
		got, ok := vd.DecodeP(uint32(id))
		if !ok || got != want {
			t.Fatalf("DecodeP(%d): view %q, read %q", id, got, want)
		}
		back, ok := vd.EncodeP(want)
		if !ok || int(back) != id {
			t.Fatalf("EncodeP(%q): view %d ok=%v, want %d", want, back, ok, id)
		}
	}
	if _, ok := vd.EncodeSO("not-a-term"); ok {
		t.Fatal("EncodeSO accepted an absent term")
	}
}

// TestViewAliasesBuffer checks the zero-copy property: a viewed term's
// bytes live inside the source buffer, not in a heap copy.
func TestViewAliasesBuffer(t *testing.T) {
	_, data := serializedDict(t)
	vd, err := View(data)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	var term string
	for id := uint32(0); id < vd.NumSO(); id++ {
		if s, ok := vd.DecodeSO(id); ok && len(s) > 0 {
			term = s
			break
		}
	}
	if term == "" {
		t.Fatal("no non-empty term to check")
	}
	p := uintptr(unsafe.Pointer(unsafe.StringData(term)))
	lo := uintptr(unsafe.Pointer(&data[0]))
	if p < lo || p >= lo+uintptr(len(data)) {
		t.Fatal("viewed term does not alias the source buffer")
	}
}

// TestViewGrowsAfterLoad checks that a view-loaded dictionary still
// accepts appends (the live layer's path) once the lazy maps are built.
func TestViewGrowsAfterLoad(t *testing.T) {
	_, data := serializedDict(t)
	vd, err := View(data)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	n := vd.NumSO()
	id := vd.AddSO("zz-new-term")
	if id != n {
		t.Fatalf("AddSO = %d, want %d", id, n)
	}
	if got, ok := vd.EncodeSO("zz-new-term"); !ok || got != id {
		t.Fatalf("EncodeSO after Add = %d, %v", got, ok)
	}
	if got := vd.AddSO("zz-new-term"); got != id {
		t.Fatalf("re-Add = %d, want %d", got, id)
	}
}

// TestViewRejectsLikeRead feeds both loaders the same corrupted and
// truncated images: their accept/reject verdicts must agree, and View
// must never panic.
func TestViewRejectsLikeRead(t *testing.T) {
	_, data := serializedDict(t)
	cases := [][]byte{
		{},
		[]byte("junk"),
		[]byte(strings.Repeat("x", len(magicHdr)+4)),
		data[:len(magicHdr)],
		data[:len(magicHdr)+3],
		data[:len(data)-1],
		data[:len(data)/2],
	}
	for i := range data {
		c := append([]byte(nil), data...)
		c[i] ^= 0x5A
		cases = append(cases, c)
	}
	for ci, c := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("case %d: View panicked: %v", ci, r)
				}
			}()
			_, errV := View(c)
			_, errR := Read(bytes.NewReader(c))
			if (errV == nil) != (errR == nil) {
				t.Fatalf("case %d: verdicts disagree: view %v, read %v", ci, errV, errR)
			}
		}()
	}
}
