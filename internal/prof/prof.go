// Package prof wires the -cpuprofile / -memprofile flags of the
// command-line tools to runtime/pprof, so perf work on the query engine
// can attach profiles without ad-hoc plumbing in every main.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finalizes the CPU profile and, when memPath is non-empty,
// writes a heap profile. Call stop once, before the process exits; a
// second call returns an error without touching the profiles again. It is
// the caller's job to report stop's error. Empty paths disable the
// respective profile, so callers can pass the flag values through
// unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return fmt.Errorf("prof: stop called twice")
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
