package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i * i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Error("Start accepted an uncreatable CPU profile path")
	}
}

func TestStopBadMemPath(t *testing.T) {
	// The heap profile is written at stop time, so an unwritable memPath
	// must surface there rather than silently dropping the profile.
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("stop ignored an unwritable heap profile path")
	}
}

func TestStopTwice(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("second stop call did not report an error")
	}
}
