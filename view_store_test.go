package wcoring

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"unsafe"
)

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned plus skew — skew 0 exercises the zero-copy aliasing path,
// skew 1..7 the misaligned copy fallback.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := (8 - int(uintptr(unsafe.Pointer(&buf[0])))%8) % 8
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

func paperSolutions(t *testing.T, s *Store) []string {
	t.Helper()
	sols, err := s.Query([]PatternString{
		{S: "?x", P: "win", O: "?y"},
		{S: "?x", P: "nom", O: "?z"},
		{S: "?z", P: "adv", O: "?y"},
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, sol := range sols {
		got = append(got, sol["x"]+"/"+sol["y"]+"/"+sol["z"])
	}
	sort.Strings(got)
	return got
}

// TestViewStoreRoundTrip checks the mmap load path end to end: a viewed
// store must answer queries exactly like the store decoded through
// io.Reader, for the plain and compressed variants and for both the
// aliased and the misaligned-fallback paths.
func TestViewStoreRoundTrip(t *testing.T) {
	for _, opt := range []Options{{}, {Compress: true}} {
		store := nobelStore(t, opt)
		var buf bytes.Buffer
		if _, err := store.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		want := paperSolutions(t, store)
		for skew := 0; skew < 8; skew++ {
			viewed, err := ViewStore(alignedCopy(buf.Bytes(), skew))
			if err != nil {
				t.Fatalf("ViewStore (compress=%v skew=%d): %v", opt.Compress, skew, err)
			}
			if viewed.Len() != store.Len() {
				t.Fatalf("skew %d: Len = %d, want %d", skew, viewed.Len(), store.Len())
			}
			got := paperSolutions(t, viewed)
			if len(got) != len(want) {
				t.Fatalf("skew %d: %d solutions, want %d", skew, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("skew %d: solution %d = %q, want %q", skew, i, got[i], want[i])
				}
			}
		}
	}
}

// unpadStore rewrites a current-format store image into the legacy
// layout: no pad flag, no padding, ring immediately after the dictionary.
func unpadStore(t *testing.T, data []byte) []byte {
	t.Helper()
	layout, err := ReadStoreLayout(data)
	if err != nil {
		t.Fatal(err)
	}
	if !layout.Padded {
		t.Fatal("test image is already legacy-format")
	}
	legacy := make([]byte, 0, len(data)-layout.PadBytes)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(layout.DictBytes))
	legacy = append(legacy, hdr[:]...)
	legacy = append(legacy, data[8:8+layout.DictBytes]...)
	legacy = append(legacy, data[layout.RingOffset:]...)
	return legacy
}

// TestViewStoreLegacyUnpadded checks that pre-padding files — whose ring
// section is not 8-byte aligned — still load through both paths, with
// ViewStore silently taking the copy fallback.
func TestViewStoreLegacyUnpadded(t *testing.T) {
	store := nobelStore(t, Options{})
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := unpadStore(t, buf.Bytes())
	layout, err := ReadStoreLayout(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Padded {
		t.Fatal("legacy image still carries the pad flag")
	}
	want := paperSolutions(t, store)

	viaRead, err := ReadStore(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("ReadStore(legacy): %v", err)
	}
	viaView, err := ViewStore(alignedCopy(legacy, 0))
	if err != nil {
		t.Fatalf("ViewStore(legacy): %v", err)
	}
	for _, s := range []*Store{viaRead, viaView} {
		got := paperSolutions(t, s)
		if len(got) != len(want) {
			t.Fatalf("legacy store: %d solutions, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("legacy store: solution %d = %q, want %q", i, got[i], want[i])
			}
		}
	}
}

func TestViewStoreTruncationsError(t *testing.T) {
	store := nobelStore(t, Options{})
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		if _, err := ViewStore(alignedCopy(data[:i], 0)); err == nil {
			t.Errorf("accepted truncation to %d of %d bytes", i, len(data))
		}
	}
}
