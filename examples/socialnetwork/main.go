// Socialnetwork runs graph analytics over a synthetic social network and
// contrasts the ring (worst-case-optimal joins) with the B+-tree
// nested-loop baseline on the cyclic queries where wco joins shine —
// the motivating workload of the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/baseline/btree"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
)

const (
	follows = iota
	likes
	memberOf
)

func main() {
	g := socialGraph(60000, 6000)
	fmt.Printf("social graph: %d edges over %d users/groups\n\n", g.Len(), g.NumSO())

	r := ring.New(g, ring.Options{})
	ringIdx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	jena := btree.NewJena(g)
	fmt.Printf("ring index:   %6.2f bytes/edge\n", float64(r.SizeBytes())/float64(g.Len()))
	fmt.Printf("b+-tree (x3): %6.2f bytes/edge\n\n", float64(jena.SizeBytes())/float64(g.Len()))

	queries := []struct {
		name string
		q    graph.Pattern
	}{
		{"follow triangles (cyclic)", graph.Pattern{
			graph.TP(graph.Var("a"), graph.Const(follows), graph.Var("b")),
			graph.TP(graph.Var("b"), graph.Const(follows), graph.Var("c")),
			graph.TP(graph.Var("a"), graph.Const(follows), graph.Var("c")),
		}},
		{"mutual follows (2-cycle)", graph.Pattern{
			graph.TP(graph.Var("a"), graph.Const(follows), graph.Var("b")),
			graph.TP(graph.Var("b"), graph.Const(follows), graph.Var("a")),
		}},
		{"friends in the same group", graph.Pattern{
			graph.TP(graph.Var("a"), graph.Const(follows), graph.Var("b")),
			graph.TP(graph.Var("a"), graph.Const(memberOf), graph.Var("g")),
			graph.TP(graph.Var("b"), graph.Const(memberOf), graph.Var("g")),
		}},
		{"influencers liked by followed users", graph.Pattern{
			graph.TP(graph.Var("a"), graph.Const(follows), graph.Var("b")),
			graph.TP(graph.Var("b"), graph.Const(likes), graph.Var("x")),
			graph.TP(graph.Var("a"), graph.Const(likes), graph.Var("x")),
		}},
	}

	opt := ltj.Options{Limit: 1000, Timeout: time.Minute}
	fmt.Printf("%-40s %12s %12s %10s\n", "query (limit 1000)", "ring", "b+tree NLJ", "solutions")
	for _, qc := range queries {
		start := time.Now()
		res, err := ltj.Evaluate(ringIdx, qc.q, opt)
		if err != nil {
			log.Fatal(err)
		}
		ringTime := time.Since(start)

		start = time.Now()
		jres, err := jena.Evaluate(qc.q, opt)
		if err != nil {
			log.Fatal(err)
		}
		jenaTime := time.Since(start)

		if len(res.Solutions) != len(jres.Solutions) && !res.TimedOut && !jres.TimedOut {
			// Both unlimited runs must agree; with a limit both return the
			// same count (possibly different subsets).
			log.Fatalf("%s: ring %d vs jena %d solutions", qc.name, len(res.Solutions), len(jres.Solutions))
		}
		fmt.Printf("%-40s %12v %12v %10d\n",
			qc.name, ringTime.Round(time.Microsecond), jenaTime.Round(time.Microsecond), len(res.Solutions))
	}
}

// socialGraph builds a preferential-attachment-flavoured network: users
// follow earlier users (hub formation), like a subset of popular users,
// and belong to a few groups.
func socialGraph(edges, users int) *graph.Graph {
	rng := rand.New(rand.NewSource(2024))
	groups := users / 50
	ts := make([]graph.Triple, 0, edges)
	hub := func() graph.ID { // earlier ids are exponentially more popular
		return graph.ID(rng.Intn(rng.Intn(users-1) + 1))
	}
	for len(ts) < edges*7/10 {
		ts = append(ts, graph.Triple{S: graph.ID(rng.Intn(users)), P: follows, O: hub()})
	}
	for len(ts) < edges*9/10 {
		ts = append(ts, graph.Triple{S: graph.ID(rng.Intn(users)), P: likes, O: hub()})
	}
	for len(ts) < edges {
		ts = append(ts, graph.Triple{
			S: graph.ID(rng.Intn(users)),
			P: memberOf,
			O: graph.ID(users + rng.Intn(groups)),
		})
	}
	return graph.New(ts)
}
