// Pathqueries demonstrates the two extensions the paper's conclusions
// call for on top of the ring: regular path queries (SPARQL property
// paths evaluated by NFA-product BFS over the index) and the dynamic
// store (amortised updates via a memtable plus merging static rings).
package main

import (
	"fmt"
	"log"

	wcoring "repro"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/ltj"
)

func main() {
	// A small org chart with management and dotted-line reporting.
	store, err := wcoring.NewStore([]wcoring.StringTriple{
		{S: "ana", P: "manages", O: "bo"},
		{S: "bo", P: "manages", O: "cy"},
		{S: "cy", P: "manages", O: "dee"},
		{S: "ana", P: "mentors", O: "dee"},
		{S: "dee", P: "mentors", O: "eli"},
		{S: "bo", P: "peers", O: "fay"},
	}, wcoring.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Regular path queries over the ring (Store.Reach):")
	for _, pq := range []struct{ src, path string }{
		{"ana", "manages"},            // direct reports
		{"ana", "manages+"},           // the whole reporting subtree
		{"ana", "(manages|mentors)+"}, // influence through either relation
		{"dee", "^manages+"},          // management chain above dee
		{"fay", "^peers/manages*"},    // fay's peer and that peer's subtree
	} {
		got, err := store.Reach(pq.src, pq.path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s from %-4s -> %v\n", pq.path, pq.src, got)
	}

	// The dynamic store: start from a graph, keep inserting, query across
	// the memtable/ring boundary, then compact.
	fmt.Println("\nDynamic store (memtable + merging static rings):")
	g := graph.New([]graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2},
	})
	ds := dynamic.FromGraph(g, dynamic.Options{MemtableThreshold: 4, MaxRings: 2})
	for i := graph.ID(2); i < 20; i++ {
		ds.Add(graph.Triple{S: i, P: 0, O: i + 1})
	}
	fmt.Printf("  after 18 inserts: %d triples, %d static rings, %d buffered\n",
		ds.Len(), ds.Rings(), ds.MemtableLen())

	res, err := ds.Evaluate(graph.Pattern{
		graph.TP(graph.Var("a"), graph.Const(0), graph.Var("b")),
		graph.TP(graph.Var("b"), graph.Const(0), graph.Var("c")),
	}, ltj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  2-hop chains across all components: %d\n", len(res.Solutions))

	ds.Compact()
	fmt.Printf("  after Compact: %d triples in %d ring(s)\n", ds.Len(), ds.Rings())
}
