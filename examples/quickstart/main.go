// Quickstart: build a ring-indexed store from string triples and run a
// worst-case-optimal join, end to end, through the public API.
package main

import (
	"fmt"
	"log"

	wcoring "repro"
)

func main() {
	// A small knowledge graph: who follows whom, and where people live.
	store, err := wcoring.NewStore([]wcoring.StringTriple{
		{S: "alice", P: "follows", O: "bob"},
		{S: "bob", P: "follows", O: "carol"},
		{S: "alice", P: "follows", O: "carol"},
		{S: "carol", P: "follows", O: "dave"},
		{S: "alice", P: "livesIn", O: "paris"},
		{S: "bob", P: "livesIn", O: "paris"},
		{S: "carol", P: "livesIn", O: "tokyo"},
	}, wcoring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d triples in %.2f bytes/triple (the ring replaces the data)\n\n",
		store.Len(), float64(store.SizeBytes())/float64(store.Len()))

	// Triangle-ish join: pairs of mutual acquaintances of a common friend
	// who live in the same city. Strings starting with '?' are variables.
	queries := []struct {
		name string
		q    []wcoring.PatternString
	}{
		{"followers of carol", []wcoring.PatternString{
			{S: "?who", P: "follows", O: "carol"},
		}},
		{"friend triangles", []wcoring.PatternString{
			{S: "?a", P: "follows", O: "?b"},
			{S: "?b", P: "follows", O: "?c"},
			{S: "?a", P: "follows", O: "?c"},
		}},
		{"co-located follows", []wcoring.PatternString{
			{S: "?a", P: "follows", O: "?b"},
			{S: "?a", P: "livesIn", O: "?city"},
			{S: "?b", P: "livesIn", O: "?city"},
		}},
	}
	for _, qc := range queries {
		sols, err := store.Query(qc.q, wcoring.QueryOptions{})
		if err != nil {
			log.Fatalf("%s: %v", qc.name, err)
		}
		fmt.Printf("%s: %d solution(s)\n", qc.name, len(sols))
		for _, s := range sols {
			fmt.Printf("  %v\n", s)
		}
		fmt.Println()
	}
}
