// Provenance exercises the Table 2-style workload: mixed queries with
// constants in any position and variable predicates, over a curation
// graph, plus index serialization (build once, load and query later) and
// the compressed C-Ring trade-off.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	wcoring "repro"
)

func main() {
	// A data-curation provenance graph: datasets derived from sources,
	// edited by curators, approved by reviewers.
	var triples []wcoring.StringTriple
	add := func(s, p, o string) {
		triples = append(triples, wcoring.StringTriple{S: s, P: p, O: o})
	}
	for i := 0; i < 400; i++ {
		ds := fmt.Sprintf("dataset%03d", i)
		add(ds, "derivedFrom", fmt.Sprintf("source%02d", i%37))
		add(ds, "editedBy", fmt.Sprintf("curator%02d", i%11))
		if i%3 == 0 {
			add(ds, "approvedBy", fmt.Sprintf("reviewer%d", i%5))
		}
		if i > 0 && i%7 == 0 {
			add(ds, "derivedFrom", fmt.Sprintf("dataset%03d", i-1))
		}
	}
	for c := 0; c < 11; c++ {
		add(fmt.Sprintf("curator%02d", c), "worksFor", fmt.Sprintf("lab%d", c%3))
	}

	// Build both flavours and compare their footprints.
	plain, err := wcoring.NewStore(triples, wcoring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	compressed, err := wcoring.NewStore(triples, wcoring.Options{Compress: true, RRRBlock: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring:   %d triples, %.2f bytes/triple\n",
		plain.Len(), float64(plain.SizeBytes())/float64(plain.Len()))
	fmt.Printf("c-ring: %d triples, %.2f bytes/triple\n\n",
		compressed.Len(), float64(compressed.SizeBytes())/float64(compressed.Len()))

	// Serialize and reload — the deployment cycle of a read-only index.
	var buf bytes.Buffer
	if _, err := plain.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized store: %d bytes\n", buf.Len())
	store, err := wcoring.ReadStore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded store: %d triples\n\n", store.Len())

	// Mixed query shapes, as in the paper's real-world benchmark: constant
	// subjects/objects and variable predicates.
	queries := []struct {
		name string
		q    []wcoring.PatternString
	}{
		{"everything about dataset042 (s,?,?)", []wcoring.PatternString{
			{S: "dataset042", P: "?rel", O: "?what"},
		}},
		{"who touched anything derived from source05", []wcoring.PatternString{
			{S: "?ds", P: "derivedFrom", O: "source05"},
			{S: "?ds", P: "editedBy", O: "?who"},
		}},
		{"full provenance chains of approved datasets", []wcoring.PatternString{
			{S: "?ds", P: "approvedBy", O: "?rev"},
			{S: "?ds", P: "derivedFrom", O: "?src"},
			{S: "?ds", P: "editedBy", O: "?cur"},
			{S: "?cur", P: "worksFor", O: "?lab"},
		}},
		{"any relation into lab0's curators (?,?,o)", []wcoring.PatternString{
			{S: "?cur", P: "worksFor", O: "lab0"},
			{S: "?ds", P: "?rel", O: "?cur"},
		}},
	}
	for _, qc := range queries {
		start := time.Now()
		sols, err := store.Query(qc.q, wcoring.QueryOptions{Limit: 1000, Timeout: time.Minute})
		if err != nil && err != wcoring.ErrTimeout {
			log.Fatalf("%s: %v", qc.name, err)
		}
		fmt.Printf("%-52s %5d solutions in %v\n",
			qc.name, len(sols), time.Since(start).Round(time.Microsecond))
		for i, s := range sols {
			if i >= 3 {
				fmt.Printf("    ... and %d more\n", len(sols)-3)
				break
			}
			fmt.Printf("    %v\n", s)
		}
	}
}
