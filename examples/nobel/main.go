// Nobel reproduces the paper's running example end to end: the graph of
// Figure 3 (Nobel winners, nominees and advisors), the ring construction
// of Figure 6 (printing the three BWT zones so they can be compared with
// the paper), and the basic graph pattern of Figure 4 evaluated with
// worst-case-optimal LTJ.
package main

import (
	"fmt"
	"log"

	wcoring "repro"
	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func main() {
	store, err := wcoring.NewStore([]wcoring.StringTriple{
		{S: "Bohr", P: "adv", O: "Thomson"},
		{S: "Thomson", P: "adv", O: "Strutt"},
		{S: "Wheeler", P: "adv", O: "Bohr"},
		{S: "Thorne", P: "adv", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Bohr"},
		{S: "Nobel", P: "nom", O: "Thomson"},
		{S: "Nobel", P: "nom", O: "Thorne"},
		{S: "Nobel", P: "nom", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Strutt"},
		{S: "Nobel", P: "win", O: "Bohr"},
		{S: "Nobel", P: "win", O: "Thomson"},
		{S: "Nobel", P: "win", O: "Thorne"},
		{S: "Nobel", P: "win", O: "Strutt"},
	}, wcoring.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Show the bended BWT zones of Figure 6 (our ids are 0-based and
	// unshifted; see the paper's Section 4.1 for the split representation).
	g := testutil.PaperGraph()
	r := ring.New(g, ring.Options{})
	fmt.Println("Bended BWT of the Nobel graph (split representation, Figure 6):")
	for _, z := range []ring.Zone{ring.ZoneSPO, ring.ZonePOS, ring.ZoneOSP} {
		col := r.Column(z)
		fmt.Printf("  zone %-3s stores %d symbols:", z, col.Len())
		for i := 0; i < col.Len(); i++ {
			fmt.Printf(" %d", col.Access(i))
		}
		fmt.Println()
	}
	// Demonstrate Theorem 3.4: the index reproduces the data via LF-cycles.
	fmt.Println("\nTriples recovered from the index alone (LF-cycles, Lemma 3.3):")
	for i := 0; i < 3; i++ {
		t := r.Triple(i)
		fmt.Printf("  triple %d: (%d, %d, %d)\n", i, t.S, t.P, t.O)
	}
	all := r.Triples()
	ok := len(all) == g.Len()
	for i, t := range g.Triples() {
		ok = ok && all[i] == t
	}
	fmt.Printf("  all %d triples match the input: %v\n\n", len(all), ok)

	// The Figure 4 query: winners y advised by nominees z.
	fmt.Println("Figure 4 query: ?x win ?y . ?x nom ?z . ?z adv ?y")
	sols, err := store.Query([]wcoring.PatternString{
		{S: "?x", P: "win", O: "?y"},
		{S: "?x", P: "nom", O: "?z"},
		{S: "?z", P: "adv", O: "?y"},
	}, wcoring.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sols {
		fmt.Printf("  x=%s  y=%s  z=%s\n", s["x"], s["y"], s["z"])
	}

	// The same query at the identifier level with an explicit variable
	// order, as Algorithm 1 presents it.
	fmt.Println("\nSame query at the ID level, explicit order (x, y, z):")
	ids, err := wcoring.Evaluate(r, graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}, wcoring.QueryOptions{Order: []string{"x", "y", "z"}})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range ids {
		fmt.Printf("  x=%d y=%d z=%d\n", b["x"], b["y"], b["z"])
	}
}
