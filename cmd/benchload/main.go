// Command benchload measures cold-start index load: full decode
// (ReadStore) against zero-copy mmap (mman.Map + ViewStore). Peak RSS
// (VmHWM) is a per-process high-water mark, so the driver re-executes
// itself once per run; each child loads the index, runs a probe query,
// and prints one JSON row on stdout with wall times and RSS read from
// /proc/self/status. The driver aggregates the rows (best wall of
// -runs, RSS from that run) into BENCH_mmap_load.json.
//
// Usage:
//
//	benchload [-triples 500000] [-index existing.ring] [-runs 3] [-json BENCH_mmap_load.json]
//	benchload -child -mode decode|mmap -index file     (internal)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	wcoring "repro"
	"repro/internal/mman"
)

type loadRow struct {
	Mode         string  `json:"mode"`
	LoadSeconds  float64 `json:"load_seconds"`
	ProbeSeconds float64 `json:"probe_seconds"`
	PeakRSSKB    int64   `json:"peak_rss_kb"`
	RSSKB        int64   `json:"rss_kb"`
	Triples      int     `json:"triples"`
	Solutions    int     `json:"probe_solutions"`
	Mapped       bool    `json:"mapped"`
}

type summary struct {
	Mode         string    `json:"mode"`
	LoadSeconds  float64   `json:"load_seconds"`
	ProbeSeconds float64   `json:"probe_seconds"`
	PeakRSSKB    int64     `json:"peak_rss_kb"`
	RSSKB        int64     `json:"rss_kb"`
	AllLoads     []float64 `json:"load_seconds_all"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchload: ")

	child := flag.Bool("child", false, "internal: run one measured load in this process")
	mode := flag.String("mode", "", "internal: decode or mmap")
	index := flag.String("index", "", "index file to load (default: generate a synthetic one)")
	triples := flag.Int("triples", 500000, "synthetic graph size when generating")
	runs := flag.Int("runs", 3, "processes per mode; best wall time wins")
	jsonOut := flag.String("json", "BENCH_mmap_load.json", "output file ('' = stdout only)")
	flag.Parse()

	if *child {
		row, err := runChild(*mode, *index)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewEncoder(os.Stdout).Encode(row); err != nil {
			log.Fatal(err)
		}
		return
	}
	driver(*index, *triples, *runs, *jsonOut)
}

// runChild performs one measured load in a fresh process.
func runChild(mode, index string) (*loadRow, error) {
	row := &loadRow{Mode: mode}
	start := time.Now()
	var store *wcoring.Store
	var reg *mman.Region
	defer func() {
		if reg != nil {
			reg.Release() // after the last query; the store aliases the mapping
		}
	}()
	switch mode {
	case "decode":
		f, err := os.Open(index)
		if err != nil {
			return nil, err
		}
		store, err = wcoring.ReadStore(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, err
		}
	case "mmap":
		var err error
		reg, err = mman.Map(index)
		if err != nil {
			return nil, err
		}
		store, err = wcoring.ViewStore(reg.Bytes())
		if err != nil {
			return nil, err
		}
		row.Mapped = reg.Mapped()
	default:
		return nil, fmt.Errorf("unknown -mode %q", mode)
	}
	row.LoadSeconds = time.Since(start).Seconds()
	row.Triples = store.Len()

	// A selective probe: the interactive first query a cold server
	// answers. Under mmap this is where page faults land, so it is part
	// of the honest cost of the lazy path.
	probeStart := time.Now()
	sols, err := store.Query([]wcoring.PatternString{
		{S: "?x", P: "p0", O: "?y"},
		{S: "?y", P: "p1", O: "?z"},
	}, wcoring.QueryOptions{Limit: 1000})
	if err != nil {
		return nil, err
	}
	row.ProbeSeconds = time.Since(probeStart).Seconds()
	row.Solutions = len(sols)

	row.PeakRSSKB, row.RSSKB = readRSS()
	return row, nil
}

// readRSS returns (VmHWM, VmRSS) in KB from /proc/self/status, or zeros
// where the platform has no procfs.
func readRSS() (peak, cur int64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &peak
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &cur
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			*dst, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return peak, cur
}

// driver builds (or reuses) an index, forks one child per run per mode,
// and writes the aggregated comparison.
func driver(index string, triples, runs int, jsonOut string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	generated := false
	if index == "" {
		dir, err := os.MkdirTemp("", "benchload")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		index = filepath.Join(dir, "bench.ring")
		log.Printf("building a %d-triple synthetic index ...", triples)
		if err := buildIndex(index, triples); err != nil {
			log.Fatal(err)
		}
		generated = true
	}
	info, err := os.Stat(index)
	if err != nil {
		log.Fatal(err)
	}

	var sums []summary
	var storeTriples int
	for _, mode := range []string{"decode", "mmap"} {
		var best *loadRow
		var all []float64
		for i := 0; i < runs; i++ {
			out, err := exec.Command(self, "-child", "-mode", mode, "-index", index).Output()
			if err != nil {
				if ee, ok := err.(*exec.ExitError); ok {
					log.Fatalf("%s child: %v\n%s", mode, err, ee.Stderr)
				}
				log.Fatalf("%s child: %v", mode, err)
			}
			var row loadRow
			if err := json.Unmarshal(out, &row); err != nil {
				log.Fatalf("%s child output: %v", mode, err)
			}
			all = append(all, round6(row.LoadSeconds))
			if best == nil || row.LoadSeconds < best.LoadSeconds {
				best = &row
			}
		}
		storeTriples = best.Triples
		sums = append(sums, summary{
			Mode:         best.Mode,
			LoadSeconds:  round6(best.LoadSeconds),
			ProbeSeconds: round6(best.ProbeSeconds),
			PeakRSSKB:    best.PeakRSSKB,
			RSSKB:        best.RSSKB,
			AllLoads:     all,
		})
		log.Printf("%-6s  load %8.3fms  probe %8.3fms  peak RSS %7d KB  RSS %7d KB",
			mode, best.LoadSeconds*1e3, best.ProbeSeconds*1e3, best.PeakRSSKB, best.RSSKB)
	}

	speedup := 0.0
	if sums[1].LoadSeconds > 0 {
		speedup = round3(sums[0].LoadSeconds / sums[1].LoadSeconds)
	}
	rssRatio := 0.0
	if sums[1].PeakRSSKB > 0 {
		rssRatio = round3(float64(sums[0].PeakRSSKB) / float64(sums[1].PeakRSSKB))
	}
	log.Printf("mmap is %.1fx faster to first query-ready; peak RSS ratio %.2fx", speedup, rssRatio)

	workload := "existing index " + index
	if generated {
		workload = fmt.Sprintf("synthetic random graph, %d triples", triples)
	}
	out := struct {
		Workload    string    `json:"workload"`
		Triples     int       `json:"triples"`
		IndexBytes  int64     `json:"index_bytes"`
		Runs        int       `json:"runs_per_mode"`
		Note        string    `json:"note"`
		Results     []summary `json:"results"`
		SpeedupWall float64   `json:"mmap_load_speedup"`
		PeakRSSX    float64   `json:"decode_over_mmap_peak_rss"`
	}{
		Workload:    workload,
		Triples:     storeTriples,
		IndexBytes:  info.Size(),
		Runs:        runs,
		Note:        "each row is a fresh process (best wall of runs_per_mode); probe = first selective 2-pattern join, where mmap takes its page faults",
		Results:     sums,
		SpeedupWall: speedup,
		PeakRSSX:    rssRatio,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", jsonOut)
	} else {
		os.Stdout.Write(data)
	}
}

// buildIndex writes a synthetic index with the shape the serve
// benchmarks use: a sparse random graph over a fixed node set with a
// skewless predicate spread, so p0/p1 probes stay selective.
func buildIndex(path string, n int) error {
	rng := rand.New(rand.NewSource(42))
	nodes := n / 5
	if nodes < 16 {
		nodes = 16
	}
	trs := make([]wcoring.StringTriple, n)
	for i := range trs {
		trs[i] = wcoring.StringTriple{
			S: "n" + strconv.Itoa(rng.Intn(nodes)),
			P: "p" + strconv.Itoa(rng.Intn(8)),
			O: "n" + strconv.Itoa(rng.Intn(nodes)),
		}
	}
	store, err := wcoring.NewStore(trs, wcoring.Options{})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := store.WriteTo(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func round3(f float64) float64 { return float64(int64(f*1e3+0.5)) / 1e3 }

func round6(f float64) float64 { return float64(int64(f*1e6+0.5)) / 1e6 }
