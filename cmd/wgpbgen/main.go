// Command wgpbgen generates the synthetic benchmark inputs standing in
// for the paper's Wikidata data: a labelled graph with Wikidata-like skew
// (as a triple TSV usable by ringbuild) and, optionally, WGPB-style query
// sets instantiated by random walks (one file per shape, queries in the
// ringquery syntax).
//
// Usage:
//
//	wgpbgen -n 1000000 -out graph.tsv [-queries qdir -pershape 50] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
	"repro/internal/wgpb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wgpbgen: ")

	n := flag.Int("n", 1_000_000, "number of triples")
	nodes := flag.Int("nodes", 0, "node domain size (0 = 2n/3)")
	preds := flag.Int("preds", 0, "predicate count (0 = n/40000, min 16)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output triple file")
	queriesDir := flag.String("queries", "", "also write WGPB query files into this directory")
	perShape := flag.Int("pershape", 50, "queries per shape (the benchmark uses 50)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := wgpb.DefaultGraphConfig(*n)
	cfg.Seed = *seed
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *preds > 0 {
		cfg.Predicates = *preds
	}
	g := wgpb.Generate(cfg)
	fmt.Printf("generated %d distinct triples, %d nodes, %d predicates\n",
		g.Len(), g.NumSO(), g.NumP())

	if err := writeGraph(g, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *queriesDir == "" {
		return
	}
	if err := os.MkdirAll(*queriesDir, 0o755); err != nil {
		log.Fatal(err)
	}
	w := wgpb.NewWorkload(g, *seed+1)
	for i := range wgpb.Shapes {
		s := &wgpb.Shapes[i]
		qs := w.Queries(s, *perShape)
		path := filepath.Join(*queriesDir, s.Name+".txt")
		if err := writeQueries(qs, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d %s queries to %s\n", len(qs), s.Name, path)
	}
}

// writeGraph emits "e<s> p<p> e<o>" lines: the string forms ringbuild's
// dictionary will re-encode.
func writeGraph(g *graph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for _, t := range g.Triples() {
		fmt.Fprintf(bw, "e%d p%d e%d\n", t.S, t.P, t.O)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeQueries emits one query per line in ringquery syntax.
func writeQueries(qs []graph.Pattern, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, q := range qs {
		parts := make([]string, len(q))
		for i, tp := range q {
			parts[i] = fmt.Sprintf("%s p%d %s", termStr(tp.S), tp.P.Value, termStr(tp.O))
		}
		fmt.Fprintln(bw, strings.Join(parts, " ; "))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func termStr(t graph.Term) string {
	if t.IsVar {
		return "?" + t.Name
	}
	return fmt.Sprintf("e%d", t.Value)
}
