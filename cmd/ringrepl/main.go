// Command ringrepl operates the replication side of a ringserve
// deployment from the command line:
//
//	ringrepl promote -addr 127.0.0.1:8081
//	ringrepl status  -addr 127.0.0.1:8081
//	ringrepl status  -data-dir ./replica
//
// promote POSTs /repl/promote on a follower's client address: the
// follower stops tailing, verifies it has applied every leader batch it
// ever heard of (409 Conflict otherwise), drains applies to durability,
// seals its WAL with a checkpoint, and flips writable.
//
// status prints the replication position either from a running server's
// /stats (live view) or, with -data-dir, from the advisory REPL position
// file and the on-disk manifest/WAL of a stopped follower.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/repl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringrepl: ")

	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "promote":
		promote(args)
	case "status":
		status(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ringrepl promote -addr host:port [-timeout 30s]
  ringrepl status  -addr host:port | -data-dir DIR`)
}

// clientURL normalizes a client-facing address to a full URL.
func clientURL(addr, path string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + path
}

func promote(args []string) {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "client address of the follower to promote (host:port)")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline for the promote request")
	fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ringrepl: promote requires -addr")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(clientURL(*addr, "/repl/promote"), "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("promote failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Role       string `json:"role"`
		AppliedSeq uint64 `json:"applied_seq"`
		DurableSeq uint64 `json:"durable_seq"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		log.Fatalf("promote: bad response: %v", err)
	}
	fmt.Printf("promoted: role=%s applied_seq=%d durable_seq=%d\n", out.Role, out.AppliedSeq, out.DurableSeq)
}

func status(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "", "client address of a running ringserve (host:port)")
	dataDir := fs.String("data-dir", "", "inspect a stopped follower's data directory instead")
	fs.Parse(args)
	if (*addr == "") == (*dataDir == "") {
		fmt.Fprintln(os.Stderr, "ringrepl: status requires exactly one of -addr or -data-dir")
		os.Exit(2)
	}
	if *dataDir != "" {
		statusDir(*dataDir)
		return
	}

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(clientURL(*addr, "/stats"))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("stats failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var stats struct {
		Repl *struct {
			Follower *repl.Info `json:"follower"`
			Streams  *int64     `json:"streams"`
		} `json:"repl"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		log.Fatalf("stats: bad response: %v", err)
	}
	if stats.Repl == nil {
		fmt.Println("replication: not configured")
		return
	}
	if stats.Repl.Streams != nil {
		fmt.Printf("leader: %d open replication streams\n", *stats.Repl.Streams)
	}
	if f := stats.Repl.Follower; f != nil {
		fmt.Printf("role:        %s\n", f.Role)
		fmt.Printf("leader:      %s", f.Leader)
		if f.LeaderAddr != "" {
			fmt.Printf(" (clients: %s)", f.LeaderAddr)
		}
		fmt.Println()
		fmt.Printf("connected:   %v   writable: %v   parked: %v\n", f.Connected, f.Writable, f.Parked)
		fmt.Printf("applied seq: %d   durable seq: %d   leader seq: %d\n", f.AppliedSeq, f.DurableSeq, f.LeaderSeq)
		fmt.Printf("lag:         %d batches, %.1fs\n", f.LagBatches, f.LagSeconds)
		if f.LastErr != "" {
			fmt.Printf("last error:  %s\n", f.LastErr)
		}
	}
}

// statusDir reports the position of a stopped follower from its advisory
// REPL file; safe against a running server (read-only).
func statusDir(dir string) {
	pos, err := repl.ReadPosition(dir)
	if err != nil {
		log.Fatal(err)
	}
	if pos == nil {
		fmt.Println("replication: no position file (not a follower data dir, or never connected)")
		return
	}
	role := "follower (read-only)"
	if pos.Writable {
		role = "promoted leader (writable)"
	}
	fmt.Printf("role:        %s\n", role)
	fmt.Printf("leader:      %s", pos.Leader)
	if pos.LeaderAddr != "" {
		fmt.Printf(" (clients: %s)", pos.LeaderAddr)
	}
	fmt.Println()
	lag := int64(pos.LeaderSeq) - int64(pos.AppliedSeq)
	if lag < 0 {
		lag = 0
	}
	fmt.Printf("applied seq: %d   leader seq: %d   lag: %d batches\n", pos.AppliedSeq, pos.LeaderSeq, lag)
	fmt.Printf("as of:       %s\n", time.UnixMilli(pos.UpdatedMs).UTC().Format(time.RFC3339))
}
