// Command ringserve is the long-running query server: it loads a
// serialized ring index (built by ringbuild) once and serves
// basic-graph-pattern queries over HTTP, with admission control, a result
// cache, Prometheus-text metrics and graceful drain on SIGTERM.
//
// Usage:
//
//	ringserve -index graph.ring [-addr :8080] [-parallel 0] ...
//	ringserve -data-dir ./data  [-addr :8080] ...
//
// With -index the server is read-only over a ring built by ringbuild.
// With -data-dir it serves a live store: the directory's manifest and
// write-ahead log are recovered before /readyz flips, and POST /insert
// and /delete append durably (200 after fsync, 202 when "sync": false).
//
// Replication (live mode):
//
//	ringserve -data-dir ./primary -repl-listen :7001            # leader
//	ringserve -data-dir ./replica -follow 127.0.0.1:7001        # read replica
//
// A leader with -repl-listen serves its snapshot files and a durable WAL
// stream to followers. A follower bootstraps from that endpoint, tails
// the WAL through the normal replay path, and serves read-only queries;
// mutations answer 421 with the leader's address, X-Ring-Min-Seq gives
// read-your-writes, and POST /repl/promote flips it into a writable
// leader after verifying it is caught up.
//
// Endpoints:
//
//	POST /query             {"pattern":[{"s":"?x","p":"winner","o":"?y"}], "limit":10}
//	GET  /query?q=?x+winner+?y
//	POST /insert            {"triples":[{"s":"a","p":"knows","o":"b"}]}   (live mode)
//	POST /delete            {"triples":[{"s":"a","p":"knows","o":"b"}]}   (live mode)
//	GET  /healthz           process liveness
//	GET  /readyz            503 until the index is loaded/recovered and self-checked
//	GET  /metrics           Prometheus text exposition
//	GET  /stats             index statistics as JSON
//	POST /cache/invalidate  drop every cached result
//
// The index loads asynchronously: the server binds and answers
// /healthz immediately, and /readyz flips to 200 once the self-check
// passes. On SIGTERM (or SIGINT) the server stops accepting queries,
// drains in-flight evaluations — in live mode it then checkpoints and
// seals the WAL — and exits 0, or exits 1 if the drain exceeds
// -drain-timeout and connections had to be torn down.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	wcoring "repro"
	"repro/internal/mman"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringserve: ")

	index := flag.String("index", "", "index file built by ringbuild (read-only mode)")
	dataDir := flag.String("data-dir", "", "data directory for live updates (WAL + snapshots)")
	useMmap := flag.Bool("mmap", false, "memory-map immutable index files instead of decoding them into the heap")
	memtable := flag.Int("memtable", 0, "live mode: memtable flush threshold in triples (0 = default)")
	maxRings := flag.Int("max-rings", 0, "live mode: static-ring budget before merging (0 = default)")
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission capacity in engine goroutines (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue bound (0 = 4x max-concurrent)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max time a request may wait for admission")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-query evaluation deadline")
	maxTimeout := flag.Duration("max-timeout", time.Minute, "cap on client-requested deadlines")
	limit := flag.Int("limit", 1000, "default solution limit per query")
	maxLimit := flag.Int("max-limit", 100000, "cap on client-requested limits")
	parallel := flag.Int("parallel", 0, "LTJ worker goroutines per query (0 = sequential, -1 = one per CPU)")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache entry bound (negative disables the cache)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache approximate byte bound")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "hard deadline for in-flight queries after SIGTERM")
	noSharedScan := flag.Bool("no-shared-scan", false, "disable shared-scan batching of identical concurrent cache-miss queries")
	replListen := flag.String("repl-listen", "", "live mode: serve the replication endpoint (snapshot + WAL stream) on this address")
	follow := flag.String("follow", "", "follower mode: bootstrap from and tail this leader replication address (host:port)")
	advertise := flag.String("advertise", "", "client-facing address advertised to followers for mutation redirects (default: -addr)")
	maxReplicaLag := flag.Duration("max-replica-lag", 30*time.Second, "follower mode: /readyz turns 503 when known replication lag exceeds this")
	flag.Parse()
	if (*index == "") == (*dataDir == "") {
		fmt.Fprintln(os.Stderr, "ringserve: exactly one of -index or -data-dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if (*replListen != "" || *follow != "") && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ringserve: -repl-listen and -follow require -data-dir (live mode)")
		os.Exit(2)
	}
	if *parallel < 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *advertise == "" {
		*advertise = *addr
		if len(*advertise) > 0 && (*advertise)[0] == ':' {
			*advertise = "127.0.0.1" + *advertise
		}
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		DefaultLimit:      *limit,
		MaxLimit:          *maxLimit,
		Parallelism:       *parallel,
		CacheEntries:      *cacheEntries,
		CacheBytes:        *cacheBytes,
		DisableSharedScan: *noSharedScan,
		MaxReplicaLag:     *maxReplicaLag,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Load the index in the background so /healthz (and a 503 /readyz)
	// answer immediately; loadErr resolves once the self-check passes. In
	// live mode this is WAL + manifest recovery; liveDB is published for
	// the drain path to close (final checkpoint + WAL seal).
	var liveDB atomic.Pointer[persist.DB]
	var follower atomic.Pointer[repl.Follower]
	loadErr := make(chan error, 1)
	switch {
	case *follow != "":
		srv.ExpectLive() // mutations 503 (retryable), not 501, during bootstrap
		go func() {
			loadErr <- openFollower(srv, &liveDB, &follower, *dataDir, *follow, *memtable, *maxRings, *useMmap)
		}()
	case *dataDir != "":
		srv.ExpectLive() // mutations 503 (retryable), not 501, during recovery
		go func() { loadErr <- openLive(srv, &liveDB, *dataDir, *memtable, *maxRings, *useMmap) }()
	default:
		go func() { loadErr <- loadStore(srv, *index, *useMmap) }()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	source := *index
	if *dataDir != "" {
		source = *dataDir + " (live)"
	}
	if *follow != "" {
		source = *dataDir + " (follower of " + *follow + ")"
	}
	log.Printf("listening on %s (%s loading)", *addr, source)

	// The replication endpoint starts only after the local store is open:
	// its handlers serve that store's manifest and WAL.
	var replSrv *http.Server

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	for {
		select {
		case err := <-loadErr:
			if err != nil {
				log.Printf("index load failed: %v", err)
				httpSrv.Close()
				os.Exit(1)
			}
			log.Printf("index ready")
			if *replListen != "" {
				leader := repl.NewLeader(liveDB.Load(), repl.LeaderOptions{Advertise: *advertise})
				srv.SetReplLeader(leader)
				replSrv = &http.Server{
					Addr:              *replListen,
					Handler:           leader.Handler(),
					ReadHeaderTimeout: 10 * time.Second,
				}
				//ringlint:goroutine-exception -- exits when drain calls replSrv.Close(); the error branch only logs
				go func(rs *http.Server) {
					if err := rs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
						log.Printf("replication listener failed: %v", err)
					}
				}(replSrv)
				log.Printf("replication endpoint on %s (advertising %s)", *replListen, *advertise)
			}
		case err := <-serveErr:
			if !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
			return
		case s := <-sig:
			log.Printf("received %v, draining (hard deadline %v)", s, *drainTimeout)
			srv.BeginDrain()
			//ringlint:detach -- process shutdown: there is no inbound context to inherit
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if replSrv != nil {
				// WAL streams are long-lived by design: abort them rather
				// than waiting (followers reconnect and resume by sequence).
				replSrv.Close()
			}
			if err != nil {
				log.Printf("drain deadline exceeded, closing: %v", err)
				httpSrv.Close()
				closeNode(&liveDB, &follower)
				os.Exit(1)
			}
			closeNode(&liveDB, &follower)
			log.Printf("drain complete")
			return
		}
	}
}

// openLive recovers the data directory (manifest snapshot + WAL replay)
// and installs the live DB; /readyz flips only after recovery and the
// self-check probe pass.
func openLive(srv *server.Server, slot *atomic.Pointer[persist.DB], dir string, memtable, maxRings int, useMmap bool) error {
	start := time.Now()
	db, err := persist.Open(dir, persist.Options{
		MemtableThreshold: memtable,
		MaxRings:          maxRings,
		Mmap:              useMmap,
	})
	if err != nil {
		return fmt.Errorf("opening %s: %w", dir, err)
	}
	if err := srv.SetLive(db); err != nil {
		db.Close()
		return err
	}
	slot.Store(db)
	st := db.Stats()
	srv.SetLoadInfo(server.LoadInfo{
		Mode:        loadMode(useMmap),
		BytesMapped: st.MappedBytes,
		Regions:     st.MappedRings,
		Seconds:     time.Since(start).Seconds(),
	})
	log.Printf("recovered %s: %d triples (replayed %d WAL batches, torn tail: %v, mode %s) in %v",
		dir, st.Triples, st.RecoveryBatches, st.RecoveryTorn, loadMode(useMmap), time.Since(start).Round(time.Millisecond))
	return nil
}

// openFollower bootstraps (or resumes) a read replica from the leader's
// replication endpoint, opens the local store through the normal recovery
// path, and starts the WAL tail loop. /readyz flips only after the
// self-check probe passes; mutations are redirected (421) to the leader.
func openFollower(srv *server.Server, slot *atomic.Pointer[persist.DB], fslot *atomic.Pointer[repl.Follower], dir, leader string, memtable, maxRings int, useMmap bool) error {
	start := time.Now()
	f, err := repl.OpenFollower(repl.FollowerOptions{
		Dir:    dir,
		Leader: leader,
		Open: persist.Options{
			MemtableThreshold: memtable,
			MaxRings:          maxRings,
			Mmap:              useMmap,
		},
	})
	if err != nil {
		return fmt.Errorf("following %s: %w", leader, err)
	}
	db := f.DB()
	if err := srv.SetLive(db); err != nil {
		f.Close()
		return err
	}
	srv.SetFollower(f)
	f.Start()
	fslot.Store(f)
	slot.Store(db)
	st := db.Stats()
	srv.SetLoadInfo(server.LoadInfo{
		Mode:        loadMode(useMmap),
		BytesMapped: st.MappedBytes,
		Regions:     st.MappedRings,
		Seconds:     time.Since(start).Seconds(),
	})
	log.Printf("following %s from %s: %d triples, resuming at seq %d (mode %s) in %v",
		leader, dir, st.Triples, db.NextSeq(), loadMode(useMmap), time.Since(start).Round(time.Millisecond))
	return nil
}

func loadMode(useMmap bool) string {
	if useMmap {
		return "mmap"
	}
	return "decode"
}

// closeNode shuts down whichever store this process opened: the follower
// (which stops the tail loop and closes its DB) or a plain live DB.
// Never both — the follower owns its DB and closes it exactly once.
func closeNode(slot *atomic.Pointer[persist.DB], fslot *atomic.Pointer[repl.Follower]) {
	if f := fslot.Load(); f != nil {
		start := time.Now()
		if err := f.Close(); err != nil {
			log.Printf("closing follower: %v", err)
			return
		}
		log.Printf("follower stopped, data dir checkpointed and sealed in %v", time.Since(start).Round(time.Millisecond))
		return
	}
	closeLive(slot)
}

// closeLive checkpoints and seals the live DB, if one was opened. Runs
// after the HTTP server has stopped accepting requests, so no writer can
// race the final checkpoint.
func closeLive(slot *atomic.Pointer[persist.DB]) {
	db := slot.Load()
	if db == nil {
		return
	}
	start := time.Now()
	if err := db.Close(); err != nil {
		log.Printf("closing data dir: %v", err)
		return
	}
	log.Printf("data dir checkpointed and sealed in %v", time.Since(start).Round(time.Millisecond))
}

// staticRegion pins the static index mapping for the process lifetime:
// the store's word slices alias the mapping and are invisible to the
// garbage collector, so the Region must stay reachable as long as any
// query can touch the index.
var staticRegion *mman.Region

// loadStore reads (or with -mmap, maps) the index file and installs it
// into the server (which self-checks it before going ready).
func loadStore(srv *server.Server, path string, useMmap bool) error {
	start := time.Now()
	var store *wcoring.Store
	var mappedBytes int64
	var regions int
	if useMmap {
		reg, err := mman.Map(path)
		if err != nil {
			return err
		}
		store, err = wcoring.ViewStore(reg.Bytes())
		if err != nil {
			reg.Release()
			return fmt.Errorf("mapping %s: %w", path, err)
		}
		staticRegion = reg
		mappedBytes = int64(reg.Len())
		regions = 1
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		store, err = wcoring.ReadStore(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
	}
	if err := srv.SetStore(store); err != nil {
		return err
	}
	srv.SetLoadInfo(server.LoadInfo{
		Mode:        loadMode(useMmap),
		BytesMapped: mappedBytes,
		Regions:     regions,
		Seconds:     time.Since(start).Seconds(),
	})
	log.Printf("loaded %s: %d triples (mode %s) in %v", path, store.Len(), loadMode(useMmap), time.Since(start).Round(time.Millisecond))
	return nil
}
