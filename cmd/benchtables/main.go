// Command benchtables regenerates the paper's evaluation tables and
// figures over the synthetic Wikidata stand-in, printing each measured
// row next to the value the paper reports (where one exists) so the
// reproduction can be judged at a glance. See EXPERIMENTS.md for the
// recorded comparison.
//
// Usage:
//
//	benchtables -table 1   [-n 1000000]   # Table 1: space + avg WGPB time
//	benchtables -table fig8 [-n 1000000]  # Figure 8: per-shape medians
//	benchtables -table 2   [-n 2000000]   # Table 2: real-world mix
//	benchtables -table 3                  # Table 3: order counts
//	benchtables -table space [-n 1000000] # §5.2.1 space/retrieval detail
//	benchtables -table parallel [-json BENCH_parallel_ltj.json]
//	                                      # intra-query parallel LTJ sweep
//	benchtables -table all
//
// The -parallel flag sets the intra-query worker count for tables 1, 2
// and fig8 (0 = sequential, the paper's protocol); -table parallel
// instead sweeps parallelism levels explicitly and can record the result
// as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/orders"
	"repro/internal/prof"
	"repro/internal/ring"
	"repro/internal/wgpb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	table := flag.String("table", "all", "which table: 1, 2, 3, fig8, space, parallel, all")
	n := flag.Int("n", 300_000, "graph size in triples for tables 1/2/fig8/space/parallel")
	perShape := flag.Int("pershape", 10, "WGPB queries per shape")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query timeout")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "intra-query workers for tables 1/2/fig8 (0 = sequential)")
	levels := flag.String("levels", "1,2,4,8", "parallelism levels for -table parallel")
	jsonOut := flag.String("json", "", "for -table parallel: also write the sweep as JSON to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	switch *table {
	case "1":
		table1(*n, *perShape, *timeout, *seed, *parallel)
	case "2":
		table2(*n, *timeout, *seed, *parallel)
	case "3":
		table3()
	case "fig8":
		figure8(*n, *perShape, *timeout, *seed, *parallel)
	case "space":
		spaceDetail(*n, *seed)
	case "parallel":
		parallelTable(*n, *perShape, *timeout, *seed, parseLevels(*levels), *jsonOut)
	case "all":
		table1(*n, *perShape, *timeout, *seed, *parallel)
		figure8(*n, *perShape, *timeout, *seed, *parallel)
		table2(*n, *timeout, *seed, *parallel)
		table3()
		spaceDetail(*n, *seed)
		parallelTable(*n, *perShape, *timeout, *seed, parseLevels(*levels), *jsonOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseLevels(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			log.Fatalf("bad -levels value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatal("-levels is empty")
	}
	return out
}

func makeGraph(n int, seed int64) *graph.Graph {
	cfg := wgpb.DefaultGraphConfig(n)
	cfg.Seed = seed
	fmt.Printf("generating WGPB stand-in graph: %d triples, %d nodes, %d predicates...\n",
		cfg.Triples, cfg.Nodes, cfg.Predicates)
	return wgpb.Generate(cfg)
}

// paperTable1 holds the paper's reported values (81.4M-triple Wikidata
// subgraph) for reference columns.
var paperTable1 = map[string][2]string{
	"Ring":        {"12.70", "31"},
	"C-Ring":      {"6.68", "97"},
	"EmptyHeaded": {"1809.84", "118"},
	"Qdag":        {"8.86", "14873"},
	"Jena":        {"72.32", "127"},
	"Jena LTJ":    {"144.64", "59"},
	"RDF-3X":      {"107.65", "182"},
}

func table1(n, perShape int, timeout time.Duration, seed int64, parallel int) {
	g := makeGraph(n, seed)
	w := wgpb.NewWorkload(g, seed+1)
	var queries []graph.Pattern
	for i := range wgpb.Shapes {
		queries = append(queries, w.Queries(&wgpb.Shapes[i], perShape)...)
	}
	fmt.Printf("\nTable 1 — index space (bytes/triple) and avg WGPB query time (%d queries)\n", len(queries))
	fmt.Printf("%-14s %14s %14s %12s %14s %14s\n",
		"System", "space B/t", "time ms", "timeouts", "paper B/t", "paper ms")
	opt := ltj.Options{Limit: 1000, Timeout: timeout, Parallelism: parallel}
	for _, sys := range bench.Build(g, bench.AllSystems()) {
		stats, err := bench.Run(sys, queries, opt)
		if err != nil {
			log.Fatal(err)
		}
		ref := paperTable1[sys.Name()]
		fmt.Printf("%-14s %14.2f %14.2f %12d %14s %14s\n",
			sys.Name(), bench.BytesPerTriple(sys, g.Len()),
			float64(stats.Mean().Microseconds())/1000, stats.Timeouts(), ref[0], ref[1])
	}
	// Graphflow could not index the paper's graph at all: its adjacency
	// arrays need Ω(p·v) space. Report the same estimate for our graph.
	gfBytes := float64(g.NumP()) * float64(g.NumSO()) * 4
	fmt.Printf("%-14s %13.0f+ %14s %12s %14s %14s   (could not index; Ω(p·v) estimate, as in the paper)\n",
		"Graphflow", gfBytes/float64(g.Len()), "—", "—", ">8966.90", "—")
	fmt.Println("(paper columns: 81.4M-triple Wikidata subgraph on the authors' hardware; shape, not absolutes, is the target)")
}

func figure8(n, perShape int, timeout time.Duration, seed int64, parallel int) {
	g := makeGraph(n, seed)
	w := wgpb.NewWorkload(g, seed+2)
	systems := bench.Build(g, bench.AllSystems())
	fmt.Printf("\nFigure 8 — per-shape query times, median [p25, p75] in ms\n")
	fmt.Printf("%-6s", "shape")
	for _, sys := range systems {
		fmt.Printf(" %22s", sys.Name())
	}
	fmt.Println()
	opt := ltj.Options{Limit: 1000, Timeout: timeout, Parallelism: parallel}
	for i := range wgpb.Shapes {
		s := &wgpb.Shapes[i]
		queries := w.Queries(s, perShape)
		fmt.Printf("%-6s", s.Name)
		for _, sys := range systems {
			stats, err := bench.Run(sys, queries, opt)
			if err != nil {
				log.Fatal(err)
			}
			if stats.UnsupportedCount() == len(queries) {
				fmt.Printf(" %22s", "n/a")
				continue
			}
			fmt.Printf(" %8.1f [%5.1f,%6.1f]",
				ms(stats.Median()), ms(stats.Percentile(25)), ms(stats.Percentile(75)))
		}
		fmt.Println()
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

var paperTable2 = map[string][4]string{
	"Ring":     {"13.86", "3920", "21", "5"},
	"Jena":     {"95.83", "11513", "35", "19"},
	"Jena LTJ": {"168.84", "1939", "162", "1"},
	"RDF-3X":   {"85.73", "8239", "126", "13"},
}

func table2(n int, timeout time.Duration, seed int64, parallel int) {
	g := makeGraph(n, seed)
	w := wgpb.NewWorkload(g, seed+3)
	var queries []graph.Pattern
	for i := 0; i < 200; i++ {
		queries = append(queries, w.RealWorldQuery(6))
	}
	fmt.Printf("\nTable 2 — real-world mix (%d queries): space and time statistics\n", len(queries))
	fmt.Printf("%-14s %10s %10s %10s %10s %9s | paper: B/t avg median timeouts\n",
		"System", "space B/t", "min ms", "avg ms", "median ms", "timeouts")
	opt := ltj.Options{Limit: 1000, Timeout: timeout, Parallelism: parallel}
	set := bench.SystemSet{Ring: true, Jena: true, JenaLTJ: true, RDF3X: true}
	for _, sys := range bench.Build(g, set) {
		stats, err := bench.Run(sys, queries, opt)
		if err != nil {
			log.Fatal(err)
		}
		ref := paperTable2[sys.Name()]
		fmt.Printf("%-14s %10.2f %10.3f %10.2f %10.2f %9d | %s %s %s %s\n",
			sys.Name(), bench.BytesPerTriple(sys, g.Len()),
			ms(stats.Min()), ms(stats.Mean()), ms(stats.Median()), stats.Timeouts(),
			ref[0], ref[1], ref[2], ref[3])
	}
	fmt.Println("(paper columns: full 958.8M-triple Wikidata, 1315 timeout-prone log queries; ms except B/t)")
}

// paperTable3 rows for d=2..6 (upper values where the paper gives ranges).
var paperTable3 = map[int][6]string{
	2: {"2", "2", "1", "1", "1", "1"},
	3: {"6", "6", "2", "2", "1", "1"},
	4: {"24", "12", "6", "4", "2", "2"},
	5: {"120", "30", "24", "8", "5", "5"},
	6: {"720", "60", "120", "[10,12]", "10", "7"},
}

func table3() {
	fmt.Printf("\nTable 3 — number of orders to index per class (measured | paper)\n")
	fmt.Printf("%-3s %18s %18s %18s %18s %18s %18s\n", "d", "W", "TW", "CW", "CTW", "CBW", "CBTW")
	for d := 2; d <= 6; d++ {
		fmt.Printf("%-3d", d)
		ref := paperTable3[d]
		classes := []orders.Class{orders.W, orders.TW, orders.CW, orders.CTW, orders.CBW, orders.CBTW}
		for i, c := range classes {
			budget := 0
			if d >= 6 {
				budget = 500_000
			}
			res := orders.Count(c, d, budget)
			val := fmt.Sprintf("%d", res.Upper)
			if !res.Exact {
				val = fmt.Sprintf("[%d,%d]", res.Lower, res.Upper)
			}
			fmt.Printf(" %9s|%-8s", val, ref[i])
		}
		fmt.Println()
	}
}

func spaceDetail(n int, seed int64) {
	g := makeGraph(n, seed)
	fmt.Printf("\nSection 5.2.1 — space breakdown and triple retrieval\n")
	simple := 12.0
	packed := float64(2*bitsFor(uint64(g.NumSO()))+bitsFor(uint64(g.NumP()))) / 8
	fmt.Printf("simple representation: %6.2f bytes/triple (paper: 12)\n", simple)
	fmt.Printf("packed representation: %6.2f bytes/triple (paper: 8)\n", packed)
	for _, cfg := range []struct {
		name  string
		opt   ring.Options
		paper string
	}{
		{"Ring (plain)", ring.Options{}, "12.70"},
		{"C-Ring b=16", ring.Options{Compress: true, RRRBlock: 16}, "6.68"},
		{"C-Ring b=64", ring.Options{Compress: true, RRRBlock: 64}, "5.35"},
	} {
		start := time.Now()
		r := ring.New(g, cfg.opt)
		build := time.Since(start)
		// Random-ish retrieval timing.
		const probes = 2000
		start = time.Now()
		for i := 0; i < probes; i++ {
			_ = r.Triple((i * 7919) % r.Len())
		}
		retr := time.Since(start) / probes
		fmt.Printf("%-14s %6.2f bytes/triple (paper %s); build %v (%.1fM triples/min); retrieve %v/triple\n",
			cfg.name, r.BytesPerTriple(), cfg.paper, build.Round(time.Millisecond),
			float64(r.Len())/build.Minutes()/1e6, retr)
	}
}

func bitsFor(v uint64) int {
	n := 0
	for v > 1 {
		n++
		v >>= 1
	}
	return n + 1
}

// parallelReport is the JSON schema of BENCH_parallel_ltj.json: one
// intra-query parallelism sweep per system over the WGPB workload.
type parallelReport struct {
	Workload   string               `json:"workload"`
	Triples    int                  `json:"triples"`
	Queries    int                  `json:"queries"`
	Limit      int                  `json:"limit"`
	TimeoutMS  int64                `json:"timeout_ms"`
	Seed       int64                `json:"seed"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Note       string               `json:"note,omitempty"`
	Systems    []parallelSystemRows `json:"systems"`
}

type parallelSystemRows struct {
	System string             `json:"system"`
	Levels []parallelLevelRow `json:"levels"`
}

type parallelLevelRow struct {
	Parallelism int     `json:"parallelism"`
	MeanMS      float64 `json:"mean_ms"`
	MedianMS    float64 `json:"median_ms"`
	P75MS       float64 `json:"p75_ms"`
	Timeouts    int     `json:"timeouts"`
	Speedup     float64 `json:"speedup_vs_p1"`
}

// parallelTable sweeps intra-query parallelism levels over the WGPB
// workload and prints per-level means/medians plus the speedup against
// the single-worker run. With jsonOut set, the sweep is also written as
// JSON (the source of BENCH_parallel_ltj.json).
func parallelTable(n, perShape int, timeout time.Duration, seed int64, levels []int, jsonOut string) {
	g := makeGraph(n, seed)
	w := wgpb.NewWorkload(g, seed+4)
	var queries []graph.Pattern
	for i := range wgpb.Shapes {
		queries = append(queries, w.Queries(&wgpb.Shapes[i], perShape)...)
	}
	opt := ltj.Options{Limit: 1000, Timeout: timeout}
	report := parallelReport{
		Workload:   "WGPB shape mix",
		Triples:    g.Len(),
		Queries:    len(queries),
		Limit:      opt.Limit,
		TimeoutMS:  timeout.Milliseconds(),
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if runtime.NumCPU() < 2 {
		report.Note = "single-CPU host: worker goroutines share one core, so speedup over P=1 " +
			"measures overhead only; rerun on a multicore machine for scaling numbers"
	}
	fmt.Printf("\nParallel LTJ — WGPB shape mix (%d queries), speedup vs 1 worker (GOMAXPROCS=%d, NumCPU=%d)\n",
		len(queries), report.GoMaxProcs, report.NumCPU)
	fmt.Printf("%-14s %10s %12s %12s %12s %10s %10s\n",
		"System", "workers", "mean ms", "median ms", "p75 ms", "timeouts", "speedup")
	set := bench.SystemSet{Ring: true, CRing: true}
	for _, sys := range bench.Build(g, set) {
		sweep, err := bench.ParallelSweep(sys, queries, opt, levels)
		if err != nil {
			log.Fatal(err)
		}
		base := sweep[0]
		rows := parallelSystemRows{System: sys.Name()}
		for _, s := range sweep {
			sp := bench.Speedup(base, s)
			fmt.Printf("%-14s %10d %12.2f %12.2f %12.2f %10d %9.2fx\n",
				sys.Name(), s.Parallelism, ms(s.Mean()), ms(s.Median()),
				ms(s.Percentile(75)), s.Timeouts(), sp)
			rows.Levels = append(rows.Levels, parallelLevelRow{
				Parallelism: s.Parallelism,
				MeanMS:      ms(s.Mean()),
				MedianMS:    ms(s.Median()),
				P75MS:       ms(s.Percentile(75)),
				Timeouts:    s.Timeouts(),
				Speedup:     sp,
			})
		}
		report.Systems = append(report.Systems, rows)
	}
	if report.Note != "" {
		fmt.Println("note: " + report.Note)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}
