// Command ringlint runs the repo-specific static-analysis suite of
// internal/lint over the module: hotpath (annotated leap/rank/select
// paths must stay allocation- and dispatch-free), derivedstate (derived
// select/rank directories are never serialized and always rebuilt on
// load), forksafe (Fork implementations must not share mutable state),
// truncation (uint64 header values must be range-checked before
// narrowing in deserializers), viewsafe (mmap-backed views must not
// write through their byte slices), guardedby (//ringlint:guarded-by
// fields are only touched with their mutex held), golife (every
// goroutine has a tracked termination path), refpair (region refcounts,
// cache byte accounting and admission tokens are released on every
// path), syncio (durable-path Sync/Close/Write/Rename errors are
// checked), and ctxflow (handler-reachable blocking honours request
// contexts; context.Background() only at annotated detach points).
//
// Usage:
//
//	go run ./cmd/ringlint ./...
//	go run ./cmd/ringlint -only guardedby,refpair internal/server
//	go run ./cmd/ringlint -timing ./...
//	go run ./cmd/ringlint -json ./...
//
// Arguments are package patterns: "./..." loads every package of the
// module (the CI lane), a directory path loads that single package (how
// the analyzer fixtures are exercised). With no arguments, "./..." is
// assumed. Exits 1 when any diagnostic is reported, printing one
// file:line:col: [analyzer] message line each. -timing appends a
// per-analyzer wall-time table (the analyzers run in parallel, so the
// lane cost is the slowest one, not the sum). -json emits a machine
// readable report {findings, timings} instead of plain lines.
//
// The tool is stdlib-only (go/ast, go/parser, go/types); the module has
// zero external dependencies and must stay that way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output shape: every finding plus the
// per-analyzer wall-clock timings of the parallel run.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Timings  []lint.Timing `json:"timings"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	timing := flag.Bool("timing", false, "print a per-analyzer wall-time table after the findings")
	asJSON := flag.Bool("json", false, "emit findings and timings as one JSON object")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ringlint [-only analyzers] [-timing] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ringlint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		os.Exit(2)
	}

	diags, timings := lint.RunTimed(pkgs, analyzers)

	if *asJSON {
		report := jsonReport{Findings: []jsonFinding{}, Timings: timings}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
			os.Exit(2)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "ringlint: %-14s %8.1fms  %d finding(s)\n", tm.Analyzer, tm.WallMS, tm.Findings)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ringlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
