// Command ringlint runs the repo-specific static-analysis suite of
// internal/lint over the module: hotpath (annotated leap/rank/select
// paths must stay allocation- and dispatch-free), derivedstate (derived
// select/rank directories are never serialized and always rebuilt on
// load), forksafe (Fork implementations must not share mutable state),
// and truncation (uint64 header values must be range-checked before
// narrowing in deserializers).
//
// Usage:
//
//	go run ./cmd/ringlint ./...
//	go run ./cmd/ringlint internal/lint/testdata/src/hotpath
//
// Arguments are package patterns: "./..." loads every package of the
// module (the CI lane), a directory path loads that single package (how
// the analyzer fixtures are exercised). With no arguments, "./..." is
// assumed. Exits 1 when any diagnostic is reported, printing one
// file:line:col: [analyzer] message line each.
//
// The tool is stdlib-only (go/ast, go/parser, go/types); the module has
// zero external dependencies and must stay that way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ringlint [-only analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ringlint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ringlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
