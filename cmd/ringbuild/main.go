// Command ringbuild builds a serialized ring index from a whitespace-
// separated triple file (one "subject predicate object" per line, '#'
// comments allowed) and reports the build statistics the paper quotes in
// Section 5.2.1: build time, triples per minute, and bytes per triple.
//
// Usage:
//
//	ringbuild -in graph.tsv -out graph.ring [-compress] [-b 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	wcoring "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringbuild: ")

	in := flag.String("in", "", "input triple file (s p o per line)")
	out := flag.String("out", "", "output index file")
	compress := flag.Bool("compress", false, "build the compressed C-Ring")
	rrrBlock := flag.Int("b", 16, "RRR block size for -compress (paper's parameter b)")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	triples, err := wcoring.ParseTSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d triples\n", len(triples))

	start := time.Now()
	store, err := wcoring.NewStore(triples, wcoring.Options{Compress: *compress, RRRBlock: *rrrBlock})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := store.WriteTo(o)
	if err != nil {
		o.Close()
		log.Fatal(err)
	}
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}

	rate := float64(store.Len()) / elapsed.Minutes()
	fmt.Printf("indexed %d distinct triples in %v (%.1fM triples/minute)\n",
		store.Len(), elapsed.Round(time.Millisecond), rate/1e6)
	fmt.Printf("index: %.2f bytes/triple in memory, %d bytes on disk (incl. dictionary)\n",
		float64(store.SizeBytes())/float64(store.Len()), n)
}
