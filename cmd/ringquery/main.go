// Command ringquery loads a serialized ring index (built by ringbuild)
// and evaluates basic graph patterns. A query is given as one or more
// triple patterns, semicolon-separated; components starting with '?' are
// variables:
//
//	ringquery -index graph.ring -query '?x winner ?y ; ?x nominee ?z ; ?z advisor ?y'
//
// Without -query, patterns are read from stdin, one query per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	wcoring "repro"
	"repro/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringquery: ")

	index := flag.String("index", "", "index file built by ringbuild")
	query := flag.String("query", "", "query: 's p o' patterns, ';'-separated, '?x' variables")
	limit := flag.Int("limit", 1000, "max solutions (0 = unlimited)")
	timeout := flag.Duration("timeout", 10*time.Minute, "evaluation timeout (0 = none)")
	parallel := flag.Int("parallel", 0,
		"intra-query worker goroutines: 0 = sequential (deterministic order), -1 = one per CPU; >1 returns the same solutions in nondeterministic order")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *index == "" {
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	store, err := wcoring.ReadStore(bufio.NewReader(f))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded index: %d triples, %.2f bytes/triple\n",
		store.Len(), float64(store.SizeBytes())/float64(store.Len()))

	if *parallel < 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	opt := wcoring.QueryOptions{Limit: *limit, Timeout: *timeout, Parallelism: *parallel}
	if *query != "" {
		runQuery(store, *query, opt)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		runQuery(store, line, opt)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func runQuery(store *wcoring.Store, raw string, opt wcoring.QueryOptions) {
	patterns, err := parseQuery(raw)
	if err != nil {
		log.Printf("bad query %q: %v", raw, err)
		return
	}
	start := time.Now()
	sols, err := store.Query(patterns, opt)
	elapsed := time.Since(start)
	if err != nil && err != wcoring.ErrTimeout {
		log.Printf("query failed: %v", err)
		return
	}
	status := ""
	if err == wcoring.ErrTimeout {
		status = " (timed out)"
	}
	fmt.Printf("%d solutions in %v%s\n", len(sols), elapsed.Round(time.Microsecond), status)
	for _, sol := range sols {
		keys := make([]string, 0, len(sol))
		for k := range sol {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("?%s=%s", k, sol[k])
		}
		fmt.Println("  " + strings.Join(parts, " "))
	}
}

func parseQuery(raw string) ([]wcoring.PatternString, error) {
	var out []wcoring.PatternString
	for _, part := range strings.Split(raw, ";") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("pattern %q: want 3 components, got %d", part, len(fields))
		}
		out = append(out, wcoring.PatternString{S: fields[0], P: fields[1], O: fields[2]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty query")
	}
	return out, nil
}
