// Command ringstats inspects a serialized ring index (built by
// ringbuild): global statistics, the predicate frequency head, space
// accounting, and — with -pattern — the on-the-fly cardinality estimate
// of Section 4.3 for a triple pattern. With -data-dir it instead
// inspects a live-update data directory (manifest version, per-ring
// sizes, WAL segments, estimated recovery replay, and — for a replica —
// the replication position) without opening or mutating it — safe
// against a running server.
//
// Usage:
//
//	ringstats -index graph.ring [-top 10] [-pattern '?x p0 ?y']
//	ringstats -data-dir ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	wcoring "repro"
	"repro/internal/mman"
	"repro/internal/persist"
	"repro/internal/repl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringstats: ")

	index := flag.String("index", "", "index file built by ringbuild")
	dataDir := flag.String("data-dir", "", "live-update data directory to inspect (read-only)")
	top := flag.Int("top", 10, "show the k most frequent predicates")
	pattern := flag.String("pattern", "", "report the cardinality of one 's p o' pattern ('?x' = variable)")
	useMmap := flag.Bool("mmap", false, "load the index via memory mapping and report the zero-copy layout")
	flag.Parse()
	if (*index == "") == (*dataDir == "") {
		fmt.Fprintln(os.Stderr, "ringstats: exactly one of -index or -data-dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if *dataDir != "" {
		inspectDataDir(*dataDir)
		return
	}

	start := time.Now()
	var store *wcoring.Store
	var reg *mman.Region
	if *useMmap {
		var err error
		reg, err = mman.Map(*index)
		if err != nil {
			log.Fatal(err)
		}
		defer reg.Release()
		store, err = wcoring.ViewStore(reg.Bytes())
		if err != nil {
			log.Fatal(err)
		}
	} else {
		f, err := os.Open(*index)
		if err != nil {
			log.Fatal(err)
		}
		store, err = wcoring.ReadStore(bufio.NewReader(f))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	loadTime := time.Since(start)
	r := store.Ring()
	d := store.Dictionary()

	st := r.Stats()
	fmt.Printf("triples:             %d\n", st.Triples)
	fmt.Printf("distinct subjects:   %d\n", st.DistinctSubjects)
	fmt.Printf("distinct predicates: %d\n", st.DistinctPredicates)
	fmt.Printf("distinct objects:    %d\n", st.DistinctObjects)
	fmt.Printf("subject/object ids:  %d   predicate ids: %d\n", r.NumSO(), r.NumP())
	fmt.Printf("index size:          %d bytes (%.2f bytes/triple; the index replaces the data)\n",
		r.SizeBytes(), r.BytesPerTriple())
	if *useMmap {
		layout, err := wcoring.ReadStoreLayout(reg.Bytes())
		if err != nil {
			log.Fatal(err)
		}
		mode := "mmap"
		if !reg.Mapped() {
			mode = "mmap (fallback read: platform has no mapping support)"
		}
		fmt.Printf("load mode:           %s\n", mode)
		fmt.Printf("mapped bytes:        %d\n", reg.Len())
		fmt.Printf("load time:           %v\n", loadTime.Round(time.Microsecond))
		fmt.Printf("dict section:        %d bytes + %d pad (padded format: %v)\n",
			layout.DictBytes, layout.PadBytes, layout.Padded)
		align := "8-byte aligned (zero-copy)"
		if !layout.Aligned {
			align = "unaligned (legacy file: words are copied on view)"
		}
		fmt.Printf("ring section:        offset %d, %s\n", layout.RingOffset, align)
	} else {
		fmt.Printf("load mode:           decode (%v)\n", loadTime.Round(time.Microsecond))
	}

	if *top > 0 {
		fmt.Printf("\ntop %d predicates:\n", *top)
		for _, ps := range r.TopPredicates(*top) {
			name, _ := d.DecodeP(ps.P)
			fmt.Printf("  %-30s %10d triples (%.2f%%)\n",
				name, ps.Count, 100*float64(ps.Count)/float64(st.Triples))
		}
	}

	if *pattern != "" {
		fields := strings.Fields(*pattern)
		if len(fields) != 3 {
			log.Fatalf("pattern %q: want 3 components", *pattern)
		}
		count, err := patternCount(store, fields)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npattern %q matches %d triples (O(log U) estimate per §4.3)\n", *pattern, count)
	}
}

// inspectDataDir prints the persistence report for a live-update data
// directory.
func inspectDataDir(dir string) {
	rep, err := persist.Inspect(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manifest version:    %d (generation %d)\n", rep.ManifestVersion, rep.Generation)
	fmt.Printf("triples (snapshot):  %d\n", rep.Triples)
	fmt.Printf("subject/object ids:  %d   predicate ids: %d\n", rep.NumSO, rep.NumP)
	if rep.DictFile != "" {
		fmt.Printf("dictionary:          %s (%d bytes)\n", rep.DictFile, rep.DictBytes)
	}
	var ringBytes int64
	fmt.Printf("static rings:        %d\n", len(rep.Rings))
	for _, r := range rep.Rings {
		ringBytes += r.Bytes
		bpt := 0.0
		if r.Triples > 0 {
			bpt = float64(r.Bytes) / float64(r.Triples)
		}
		fmt.Printf("  %-24s %10d triples %12d bytes (%.2f bytes/triple)\n", r.Name, r.Triples, r.Bytes, bpt)
	}
	if ringBytes > 0 {
		fmt.Printf("ring bytes total:    %d\n", ringBytes)
	}
	fmt.Printf("wal floor:           segment %d\n", rep.WALFloor)
	fmt.Printf("wal segments:        %d\n", len(rep.Segments))
	for _, s := range rep.Segments {
		state := "sealed"
		switch {
		case s.Err != "":
			state = "CORRUPT: " + s.Err
		case s.Torn:
			state = "torn tail (recoverable)"
		case s.Live:
			state = "live"
		}
		fmt.Printf("  wal-%016x.log %10d bytes  %6d batches %7d ops  %s\n",
			s.Seq, s.Bytes, s.Batches, s.Ops, state)
	}
	fmt.Printf("estimated replay:    %d batches / %d ops on next open\n", rep.ReplayBatches, rep.ReplayOps)
	fmt.Printf("durable seq:         %d (snapshot covers through %d)\n", rep.DurableSeq, rep.SnapshotLastSeq)
	if pos, err := repl.ReadPosition(dir); err != nil {
		log.Fatal(err)
	} else if pos != nil {
		role := "follower (read-only)"
		if pos.Writable {
			role = "promoted leader (writable)"
		}
		fmt.Printf("replication role:    %s\n", role)
		fmt.Printf("replication leader:  %s", pos.Leader)
		if pos.LeaderAddr != "" {
			fmt.Printf(" (clients: %s)", pos.LeaderAddr)
		}
		fmt.Println()
		lag := int64(pos.LeaderSeq) - int64(pos.AppliedSeq)
		if lag < 0 {
			lag = 0
		}
		fmt.Printf("replication seqs:    applied %d / leader %d (lag %d batches, as of %s)\n",
			pos.AppliedSeq, pos.LeaderSeq, lag,
			time.UnixMilli(pos.UpdatedMs).UTC().Format(time.RFC3339))
	}
}

// patternCount resolves the string pattern and asks the ring for its
// cardinality.
func patternCount(store *wcoring.Store, fields []string) (int, error) {
	d := store.Dictionary()
	mk := func(raw string, pred bool) (wcoring.Term, bool) {
		if strings.HasPrefix(raw, "?") {
			return wcoring.Var(raw[1:]), true
		}
		var id wcoring.ID
		var ok bool
		if pred {
			id, ok = d.EncodeP(raw)
		} else {
			id, ok = d.EncodeSO(raw)
		}
		if !ok {
			return wcoring.Term{}, false
		}
		return wcoring.Const(id), true
	}
	s, ok1 := mk(fields[0], false)
	p, ok2 := mk(fields[1], true)
	o, ok3 := mk(fields[2], false)
	if !ok1 || !ok2 || !ok3 {
		return 0, nil // a constant absent from the data: zero matches
	}
	return store.Ring().PatternCount(wcoring.TP(s, p, o)), nil
}
