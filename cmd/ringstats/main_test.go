package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/persist"
	"repro/internal/repl"
)

// TestDataDirInspection checks the read-only data-directory path: build
// a live store with one checkpoint and an unreplayed WAL tail, then make
// sure ringstats reports the manifest, rings and replay estimate without
// mutating anything.
func TestDataDirInspection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI inspection is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not found")
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	db, err := persist.Open(dataDir, persist.Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]dict.StringTriple, 20)
	for i := range ts {
		ts[i] = dict.StringTriple{S: fmt.Sprintf("s%d", i), P: "p0", O: "o"}
	}
	if _, err := db.InsertBatch(ts[:10], true); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertBatch(ts[10:], true); err != nil {
		t.Fatal(err)
	}
	// Deliberately not closed: Close would checkpoint and absorb the WAL
	// tail, but a crashed process leaves exactly this on-disk state — a
	// manifest snapshot plus a fsynced tail awaiting replay. Inspect must
	// read it without touching the live directory.

	cmd := exec.Command(goBin, "run", ".", "-data-dir", dataDir)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = wd
	outB, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ringstats -data-dir: %v\n%s", err, outB)
	}
	out := string(outB)
	for _, want := range []string{
		"manifest version:    1",
		"triples (snapshot):  10",
		"wal segments:",
		"estimated replay:    1 batches / 10 ops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ringstats output missing %q:\n%s", want, out)
		}
	}
}

// TestFollowerPositionOutput checks that inspecting a follower data dir
// reports the durable sequence watermark and the advisory replication
// position (leader, applied/leader seqs, lag).
func TestFollowerPositionOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI inspection is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not found")
	}
	dataDir := filepath.Join(t.TempDir(), "replica")
	db, err := persist.Open(dataDir, persist.Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		ts := []dict.StringTriple{{S: fmt.Sprintf("s%d", i), P: "p0", O: "o"}}
		if _, err := db.InsertBatch(ts, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The advisory position file a follower maintains: this replica has
	// applied 7 of 9 known leader batches.
	pos, err := json.Marshal(repl.Position{
		Leader:     "10.0.0.1:7001",
		LeaderAddr: "10.0.0.1:8080",
		LeaderSeq:  9,
		AppliedSeq: 7,
		UpdatedMs:  1754610000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "REPL"), pos, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "run", ".", "-data-dir", dataDir)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = wd
	outB, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ringstats -data-dir: %v\n%s", err, outB)
	}
	out := string(outB)
	for _, want := range []string{
		"durable seq:         7",
		"replication role:    follower (read-only)",
		"replication leader:  10.0.0.1:7001 (clients: 10.0.0.1:8080)",
		"replication seqs:    applied 7 / leader 9 (lag 2 batches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ringstats output missing %q:\n%s", want, out)
		}
	}
}
