package wcoring

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/baseline/btreeltj"
	"repro/internal/baseline/flattrie"
	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
	"repro/internal/wgpb"
)

// TestSoakCrossSystemEquivalence is the repository's heavyweight
// integration test: at a scale well beyond the unit tests (30k triples)
// it checks that the ring (plain, compressed, sparse-C), the flat tries
// and the B+-tree orders produce identical solutions for hundreds of
// random queries covering every constant/variable shape, plus the WGPB
// shapes. Run with -short to skip.
func TestSoakCrossSystemEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := wgpb.Generate(wgpb.GraphConfig{Triples: 30_000, Nodes: 8_000, Predicates: 12, Seed: 99})

	mk := func(opt ring.Options) ltj.Index {
		r := ring.New(g, opt)
		return ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
			return r.NewPatternState(tp)
		})
	}
	reference := mk(ring.Options{})
	systems := map[string]ltj.Index{
		"c-ring":        mk(ring.Options{Compress: true, RRRBlock: 16}),
		"ring-sparse-c": mk(ring.Options{SparseC: true}),
		"flattrie":      flattrie.New(g),
		"btreeltj":      btreeltj.New(g),
	}
	// No timeout: a timed-out evaluation returns PARTIAL solutions, which
	// must never be compared as if complete (that once produced a flaky
	// failure under CPU contention). Solution explosions are skipped via
	// the cap below instead.
	const maxSols = 100_000
	opt := ltj.Options{Limit: 0}

	rng := rand.New(rand.NewSource(7))
	var queries []graph.Pattern
	for i := 0; i < 150; i++ {
		queries = append(queries, testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(4), 0.6, false))
	}
	w := wgpb.NewWorkload(g, 5)
	for i := range wgpb.Shapes {
		queries = append(queries, w.Queries(&wgpb.Shapes[i], 2)...)
	}

	skipped := 0
	for qi, q := range queries {
		// Reference pass, capped: queries with enormous outputs prove
		// little here and make the cross-check needlessly slow.
		refRes, err := ltj.Evaluate(reference, q, ltj.Options{Limit: maxSols + 1})
		if err != nil {
			t.Fatalf("query %d %v on ring: %v", qi, q, err)
		}
		if len(refRes.Solutions) > maxSols {
			skipped++
			continue
		}
		ref := refRes.Solutions
		for name, idx := range systems {
			res, err := ltj.Evaluate(idx, q, opt)
			if err != nil {
				t.Fatalf("query %d %v on %s: %v", qi, q, name, err)
			}
			if diff := testutil.SameSolutions(res.Solutions, ref, q.Vars()); diff != "" {
				t.Fatalf("query %d %v: %s disagrees with ring: %s", qi, q, name, diff)
			}
		}
	}
	if skipped > len(queries)/4 {
		t.Fatalf("%d of %d queries skipped as oversized — workload too explosive", skipped, len(queries))
	}
	t.Logf("cross-checked %d queries (%d skipped as oversized)", len(queries)-skipped, skipped)
}

// TestSoakSerializedEquivalence builds, serializes, reloads and re-runs a
// workload, confirming the on-disk format carries full fidelity at scale.
func TestSoakSerializedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := wgpb.Generate(wgpb.GraphConfig{Triples: 20_000, Nodes: 6_000, Predicates: 10, Seed: 7})
	sys := bench.RingSystem("Ring", ring.New(g, ring.Options{}))

	w := wgpb.NewWorkload(g, 3)
	var queries []graph.Pattern
	for i := range wgpb.Shapes {
		queries = append(queries, w.Queries(&wgpb.Shapes[i], 1)...)
	}
	statsBefore, err := bench.Run(sys, queries, ltj.Options{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through serialization.
	r := ring.New(g, ring.Options{})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ring.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := bench.RingSystem("Ring2", loaded)
	statsAfter, err := bench.Run(sys2, queries, ltj.Options{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range statsBefore.Queries {
		if statsBefore.Queries[i].Solutions != statsAfter.Queries[i].Solutions {
			t.Fatalf("query %d: %d solutions before, %d after reload",
				i, statsBefore.Queries[i].Solutions, statsAfter.Queries[i].Solutions)
		}
	}
}
