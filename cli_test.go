package wcoring

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the command-line tools end to end:
// generate a graph, build an index, query it. Skipped if the Go tool
// cannot run subprocesses in this environment.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	dir := t.TempDir()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not found")
	}
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(goBin, append([]string{"run"}, args...)...)
		cmd.Dir = mustModuleRoot(t)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	graphPath := filepath.Join(dir, "graph.tsv")
	indexPath := filepath.Join(dir, "graph.ring")

	out := run("./cmd/wgpbgen", "-n", "5000", "-out", graphPath, "-seed", "3")
	if !strings.Contains(out, "generated") {
		t.Fatalf("wgpbgen output: %s", out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("graph file missing: %v", err)
	}

	out = run("./cmd/ringbuild", "-in", graphPath, "-out", indexPath)
	if !strings.Contains(out, "indexed") {
		t.Fatalf("ringbuild output: %s", out)
	}

	out = run("./cmd/ringquery", "-index", indexPath, "-query", "?x ?p ?y", "-limit", "5")
	if !strings.Contains(out, "5 solutions") {
		t.Fatalf("ringquery output: %s", out)
	}

	// A compressed build must also round-trip.
	out = run("./cmd/ringbuild", "-in", graphPath, "-out", indexPath+".c", "-compress", "-b", "16")
	if !strings.Contains(out, "indexed") {
		t.Fatalf("compressed ringbuild output: %s", out)
	}
	out = run("./cmd/ringquery", "-index", indexPath+".c", "-query", "?x ?p ?y", "-limit", "3")
	if !strings.Contains(out, "3 solutions") {
		t.Fatalf("compressed ringquery output: %s", out)
	}
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}
