// Package wcoring is a Go implementation of the ring index of Arroyuelo,
// Hogan, Navarro, Reutter, Rojas-Ledesma and Soto, "Worst-Case Optimal
// Graph Joins in Almost No Space" (SIGMOD 2021): a BWT-based graph index
// that supports worst-case-optimal Leapfrog TrieJoin over
// subject–predicate–object graphs in |G| + o(|G|) bits — the index
// replaces the graph — with a compressed variant (C-Ring) that fits in
// entropy-bounded space.
//
// # Quick start
//
//	store, err := wcoring.NewStore([]wcoring.StringTriple{
//		{"bohr", "advisor", "thomson"},
//		{"nobel", "winner", "bohr"},
//		{"nobel", "nominee", "thomson"},
//	}, wcoring.Options{})
//	...
//	sols, err := store.Query([]wcoring.PatternString{
//		{S: "?x", P: "winner", O: "?y"},
//		{S: "?x", P: "nominee", O: "?z"},
//		{S: "?z", P: "advisor", O: "?y"},
//	}, wcoring.QueryOptions{})
//
// Terms beginning with '?' are variables; everything else is a constant.
// Solutions come back as variable→string maps.
//
// Power users can work at the identifier level with the subpackage types
// re-exported here (Graph, Pattern, Ring, Evaluate), and the baselines the
// paper compares against live under internal/baseline (exercised by the
// benchmark harness in bench_test.go and cmd/benchtables).
package wcoring

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/dict"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/query"
	"repro/internal/ring"
	"repro/internal/rpq"
)

// Re-exported identifier-level types. See the internal packages for the
// full documentation of each.
type (
	// ID is a dictionary-encoded constant.
	ID = graph.ID
	// Triple is an encoded subject–predicate–object edge.
	Triple = graph.Triple
	// Term is a constant or variable component of a triple pattern.
	Term = graph.Term
	// TriplePattern is a triple with optional variables.
	TriplePattern = graph.TriplePattern
	// Pattern is a basic graph pattern (a set of triple patterns).
	Pattern = graph.Pattern
	// Binding is one solution at the identifier level.
	Binding = graph.Binding
	// Graph is an in-memory triple set.
	Graph = graph.Graph
	// Ring is the paper's index.
	Ring = ring.Ring
	// StringTriple is a raw string edge.
	StringTriple = dict.StringTriple
	// Dictionary maps strings to identifiers.
	Dictionary = dict.Dictionary
)

// Const builds a constant term.
func Const(v ID) Term { return graph.Const(v) }

// Var builds a variable term.
func Var(name string) Term { return graph.Var(name) }

// TP builds a triple pattern.
func TP(s, p, o Term) TriplePattern { return graph.TP(s, p, o) }

// NewGraph builds a deduplicated, sorted graph from encoded triples.
func NewGraph(ts []Triple) *Graph { return graph.New(ts) }

// Options configures the physical ring representation.
type Options struct {
	// Compress selects the C-Ring (RRR-compressed bitvectors).
	Compress bool
	// RRRBlock is the compression block size b (default 16). Larger values
	// compress better and query slower (the paper evaluates 16 and 64).
	RRRBlock int
	// SparseC stores the per-zone C arrays as Elias-Fano bitvectors
	// (footnote 2 of the paper) — smaller for large, sparse ID spaces.
	SparseC bool
}

// NewRing builds a ring index over g.
func NewRing(g *Graph, opt Options) *Ring {
	return ring.New(g, ring.Options{Compress: opt.Compress, RRRBlock: opt.RRRBlock, SparseC: opt.SparseC})
}

// EvalStats counts the trie-iterator operations of one evaluation (see
// ltj.EvalStats).
type EvalStats = ltj.EvalStats

// QueryOptions mirrors the evaluation knobs of the paper's benchmarks.
type QueryOptions struct {
	// Limit caps the number of solutions (0 = unlimited).
	Limit int
	// Timeout aborts evaluation (0 = none).
	Timeout time.Duration
	// Context, when non-nil, cancels the evaluation when it is done (e.g.
	// a serving layer's per-request deadline or a disconnected client).
	// Cancellation surfaces as an error wrapping ErrCancelled and the
	// context's own Err().
	Context context.Context
	// Order forces a variable elimination order (nil = automatic).
	Order []string
	// Parallelism sets the number of worker goroutines for intra-query
	// evaluation (0 or 1 = sequential, deterministic order; > 1 returns
	// the same solution multiset in nondeterministic order). The ring is
	// shared read-only across workers.
	Parallelism int
}

// Evaluate runs worst-case-optimal LTJ over a ring at the identifier
// level.
func Evaluate(r *Ring, q Pattern, opt QueryOptions) ([]Binding, error) {
	idx := ltj.IndexFunc(func(tp TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	res, err := ltj.Evaluate(idx, q, ltj.Options{
		Limit: opt.Limit, Timeout: opt.Timeout, Context: opt.Context,
		Order: opt.Order, Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return res.Solutions, ErrTimeout
	}
	return res.Solutions, nil
}

// ErrTimeout reports that evaluation hit QueryOptions.Timeout; partial
// solutions are still returned.
var ErrTimeout = errors.New("wcoring: query timed out")

// ErrCancelled reports that QueryOptions.Context was cancelled before the
// evaluation finished; the returned error also wraps the context's Err().
var ErrCancelled = ltj.ErrCancelled

// Store bundles a dictionary, the ring, and string-level querying — the
// end-to-end API a downstream application uses.
type Store struct {
	dict *dict.Dictionary
	ring *ring.Ring
	n    int
}

// NewStore dictionary-encodes the triples and builds a ring over them.
func NewStore(triples []StringTriple, opt Options) (*Store, error) {
	d, encoded := dict.Build(triples)
	g := graph.NewWithDomains(encoded, d.NumSO(), d.NumP())
	return &Store{dict: d, ring: NewRing(g, opt), n: g.Len()}, nil
}

// Len returns the number of distinct triples.
func (s *Store) Len() int { return s.n }

// Ring exposes the underlying index.
func (s *Store) Ring() *Ring { return s.ring }

// Dictionary exposes the string↔ID mapping.
func (s *Store) Dictionary() *Dictionary { return s.dict }

// SizeBytes returns the index footprint (the ring replaces the triples;
// the dictionary is the unavoidable string table).
func (s *Store) SizeBytes() int { return s.ring.SizeBytes() }

// PatternString is a triple pattern over strings; components starting
// with '?' are variables.
type PatternString struct {
	S, P, O string
}

// Compile translates string patterns to the encoded form: the identifier-
// level pattern plus the set of variables bound at predicate positions
// (those decode through the predicate dictionary). feasible is false when
// a constant is absent from the dictionary, which makes the query provably
// empty. Exported for serving layers that plan, cache or instrument
// queries at the identifier level before evaluating them.
func (s *Store) Compile(q []PatternString) (encoded Pattern, predVars map[string]bool, feasible bool, err error) {
	return s.compile(q)
}

// compile translates string patterns to the encoded form. Constants
// absent from the dictionary make the query provably empty; that is
// reported via the bool result.
func (s *Store) compile(q []PatternString) (Pattern, map[string]bool, bool, error) {
	return CompilePatterns(s.dict, q)
}

// CompilePatterns is Compile against an explicit dictionary: the dynamic
// persistence layer serves queries over a growing dictionary it owns and
// locks, so the translation cannot be a method of the static Store alone.
func CompilePatterns(d *Dictionary, q []PatternString) (Pattern, map[string]bool, bool, error) {
	out := make(Pattern, 0, len(q))
	predVars := map[string]bool{}
	for i, ps := range q {
		mk := func(raw string, isPred bool) (Term, bool, error) {
			if raw == "" {
				return Term{}, false, fmt.Errorf("wcoring: pattern %d has an empty component", i)
			}
			if strings.HasPrefix(raw, "?") {
				name := raw[1:]
				if name == "" {
					return Term{}, false, fmt.Errorf("wcoring: pattern %d has an unnamed variable", i)
				}
				if isPred {
					predVars[name] = true
				}
				return Var(name), true, nil
			}
			var id ID
			var ok bool
			if isPred {
				id, ok = d.EncodeP(raw)
			} else {
				id, ok = d.EncodeSO(raw)
			}
			if !ok {
				return Term{}, false, nil // constant not in the data: empty query
			}
			return Const(id), true, nil
		}
		st, ok, err := mk(ps.S, false)
		if err != nil {
			return nil, nil, false, err
		}
		if !ok {
			return nil, nil, false, nil
		}
		pt, ok, err := mk(ps.P, true)
		if err != nil {
			return nil, nil, false, err
		}
		if !ok {
			return nil, nil, false, nil
		}
		ot, ok, err := mk(ps.O, false)
		if err != nil {
			return nil, nil, false, err
		}
		if !ok {
			return nil, nil, false, nil
		}
		out = append(out, TP(st, pt, ot))
	}
	return out, predVars, true, nil
}

// Query evaluates string-level basic graph patterns and decodes the
// solutions back to strings.
func (s *Store) Query(q []PatternString, opt QueryOptions) ([]map[string]string, error) {
	encoded, predVars, feasible, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	if !feasible {
		return nil, nil
	}
	sols, err := Evaluate(s.ring, encoded, opt)
	out := make([]map[string]string, len(sols))
	for i, b := range sols {
		out[i] = s.dict.DecodeBinding(b, predVars)
	}
	return out, err
}

// SelectOptions extends QueryOptions with the layered query features of
// package internal/query: projection, DISTINCT, ordering and windowing.
type SelectOptions struct {
	QueryOptions
	// Project lists the variables to return (nil = all).
	Project []string
	// Distinct deduplicates projected solutions.
	Distinct bool
	// OrderBy sorts results by the given variables (by constant ID, i.e.
	// lexicographically, since the dictionary assigns IDs in sorted order).
	OrderBy []string
	// Offset skips the first results (applied after ordering).
	Offset int
	// Stats, when non-nil, receives the engine's operation counts for the
	// evaluation (leaps, binds, seeks, enumerations) — the serving layer
	// exports them as metrics.
	Stats *EvalStats
}

// Select evaluates a query with projection/DISTINCT/ORDER BY/OFFSET on
// top of the wco join, decoding solutions to strings.
func (s *Store) Select(q []PatternString, opt SelectOptions) ([]map[string]string, error) {
	encoded, predVars, feasible, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	if !feasible {
		return nil, nil
	}
	idx := ltj.IndexFunc(func(tp TriplePattern) ltj.PatternIter {
		return s.ring.NewPatternState(tp)
	})
	sols, err := query.Select{
		Pattern:     encoded,
		Project:     opt.Project,
		Distinct:    opt.Distinct,
		OrderBy:     opt.OrderBy,
		Offset:      opt.Offset,
		Limit:       opt.Limit,
		Timeout:     opt.Timeout,
		Context:     opt.Context,
		Parallelism: opt.Parallelism,
		Stats:       opt.Stats,
	}.Run(idx)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]string, len(sols))
	for i, b := range sols {
		out[i] = s.dict.DecodeBinding(b, predVars)
	}
	return out, nil
}

// Reach evaluates a regular path query from the given source node: it
// returns, in dictionary order, the nodes reachable by a path whose
// predicate sequence matches the SPARQL-flavoured expression — names
// combined with '/' (sequence), '|' (alternation), '*', '+', '?'
// (repetition), '^' (inverse), and parentheses. For example
// "advisor+/(winner|nominee)". Regular path queries are one of the
// operators the paper's conclusions propose layering on the ring.
func (s *Store) Reach(src, path string) ([]string, error) {
	srcID, ok := s.dict.EncodeSO(src)
	if !ok {
		return nil, nil // unknown source: nothing reachable
	}
	expr, err := rpq.ParsePath(path, func(name string) (ID, bool) {
		return s.dict.EncodeP(name)
	})
	if err != nil {
		return nil, err
	}
	lister := rpq.IndexLister{Idx: ltj.IndexFunc(func(tp TriplePattern) ltj.PatternIter {
		return s.ring.NewPatternState(tp)
	})}
	ids := rpq.Compile(expr).Reach(lister, srcID)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if str, ok := s.dict.DecodeSO(id); ok {
			out = append(out, str)
		}
	}
	return out, nil
}

// storePadFlag marks the high bit of the store header's dictionary
// length when the dictionary section is zero-padded to a multiple of 8
// bytes. Padding keeps the ring section 8-byte aligned within the file,
// which is what lets ViewStore alias the ring's word payloads straight
// out of a memory mapping. Files written before the flag existed (no
// padding, arbitrary alignment) remain readable: ViewStore falls back to
// copying the words and ReadStore never cared.
const storePadFlag = uint64(1) << 63

// WriteTo serializes the store: a length-prefixed dictionary section
// followed by the ring. The length prefix lets the reader consume the
// dictionary exactly, regardless of its internal buffering; the section
// is padded so the ring starts 8-byte aligned (see storePadFlag).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	var dbuf bytes.Buffer
	if _, err := s.dict.WriteTo(&dbuf); err != nil {
		return 0, err
	}
	pad := (8 - dbuf.Len()%8) % 8
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(dbuf.Len())|storePadFlag)
	n := int64(0)
	k, err := w.Write(hdr[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	k2, err := w.Write(dbuf.Bytes())
	n += int64(k2)
	if err != nil {
		return n, err
	}
	var zeros [8]byte
	k3, err := w.Write(zeros[:pad])
	n += int64(k3)
	if err != nil {
		return n, err
	}
	n2, err := s.ring.WriteTo(w)
	return n + n2, err
}

// ReadStore deserializes a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wcoring: short store header: %w", err)
	}
	raw := binary.LittleEndian.Uint64(hdr[:])
	dictLen := raw &^ storePadFlag
	if dictLen > 1<<40 {
		return nil, errors.New("wcoring: implausible dictionary size")
	}
	// Grow the buffer as bytes actually arrive so a forged length on a
	// short stream cannot trigger a huge allocation.
	var dbuf bytes.Buffer
	if n, err := io.CopyN(&dbuf, r, int64(dictLen)); err != nil || uint64(n) != dictLen {
		return nil, fmt.Errorf("wcoring: short dictionary section: %w", err)
	}
	d, err := dict.Read(bytes.NewReader(dbuf.Bytes()))
	if err != nil {
		return nil, err
	}
	if raw&storePadFlag != 0 {
		pad := (8 - dictLen%8) % 8
		if n, err := io.CopyN(io.Discard, r, int64(pad)); err != nil || uint64(n) != pad {
			return nil, fmt.Errorf("wcoring: short dictionary padding: %w", err)
		}
	}
	rg, err := ring.Read(r)
	if err != nil {
		return nil, err
	}
	return &Store{dict: d, ring: rg, n: rg.Len()}, nil
}

// ViewStore deserializes a store from an in-memory buffer, typically a
// memory-mapped index file. The dictionary's term strings alias b and
// its encode-side maps are deferred to the first query with a constant
// (dict.View); the ring's bulk word payloads alias b whenever the ring
// section is 8-byte aligned — which every file written by the current
// WriteTo guarantees via dictionary padding. Unpadded legacy files still
// load, falling back to copying the ring words.
//
// b must stay valid (mapped, unmodified) for the lifetime of the
// returned Store.
func ViewStore(b []byte) (*Store, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wcoring: short store header: %w", io.ErrUnexpectedEOF)
	}
	raw := binary.LittleEndian.Uint64(b)
	dictLen := raw &^ storePadFlag
	if dictLen > 1<<40 {
		return nil, errors.New("wcoring: implausible dictionary size")
	}
	off := uint64(8) + dictLen
	if raw&storePadFlag != 0 {
		off += (8 - dictLen%8) % 8
	}
	if off > uint64(len(b)) {
		return nil, fmt.Errorf("wcoring: short dictionary section: %w", io.ErrUnexpectedEOF)
	}
	d, err := dict.View(b[8 : 8+dictLen])
	if err != nil {
		return nil, err
	}
	rg, _, err := ring.View(b[off:])
	if err != nil {
		return nil, err
	}
	return &Store{dict: d, ring: rg, n: rg.Len()}, nil
}

// StoreLayout describes the byte layout of a serialized store, for
// tooling that reports whether a file can be loaded zero-copy.
type StoreLayout struct {
	DictBytes  int64 // dictionary section length (excluding padding)
	PadBytes   int   // zero padding after the dictionary section
	RingOffset int64 // byte offset of the ring section
	Padded     bool  // written with the dict-padding flag (current format)
	Aligned    bool  // ring section starts on an 8-byte boundary
}

// ReadStoreLayout parses just the store header of b (a full file is not
// required; 8 bytes suffice).
func ReadStoreLayout(b []byte) (StoreLayout, error) {
	if len(b) < 8 {
		return StoreLayout{}, fmt.Errorf("wcoring: short store header: %w", io.ErrUnexpectedEOF)
	}
	raw := binary.LittleEndian.Uint64(b)
	dictLen := raw &^ storePadFlag
	if dictLen > 1<<40 {
		return StoreLayout{}, errors.New("wcoring: implausible dictionary size")
	}
	l := StoreLayout{DictBytes: int64(dictLen), Padded: raw&storePadFlag != 0}
	off := uint64(8) + dictLen
	if l.Padded {
		l.PadBytes = int((8 - dictLen%8) & 7)
		off += uint64(l.PadBytes)
	}
	l.RingOffset = int64(off)
	l.Aligned = off%8 == 0
	return l, nil
}

// ParseTSV reads "s p o" lines into string triples.
func ParseTSV(r io.Reader) ([]StringTriple, error) { return dict.ParseTSV(r) }

// ParseNTriples reads the W3C N-Triples format into string triples (terms
// keep their surface syntax: IRIs in angle brackets, literals quoted).
func ParseNTriples(r io.Reader) ([]StringTriple, error) { return dict.ParseNTriples(r) }
