package wcoring_test

import (
	"fmt"
	"log"
	"sort"

	wcoring "repro"
)

func newExampleStore() *wcoring.Store {
	store, err := wcoring.NewStore([]wcoring.StringTriple{
		{S: "Bohr", P: "adv", O: "Thomson"},
		{S: "Thomson", P: "adv", O: "Strutt"},
		{S: "Wheeler", P: "adv", O: "Bohr"},
		{S: "Thorne", P: "adv", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Bohr"},
		{S: "Nobel", P: "nom", O: "Thomson"},
		{S: "Nobel", P: "nom", O: "Thorne"},
		{S: "Nobel", P: "nom", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Strutt"},
		{S: "Nobel", P: "win", O: "Bohr"},
		{S: "Nobel", P: "win", O: "Thomson"},
		{S: "Nobel", P: "win", O: "Thorne"},
		{S: "Nobel", P: "win", O: "Strutt"},
	}, wcoring.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return store
}

// The paper's Figure 4 query: prize winners advised by nominees.
func ExampleStore_Query() {
	store := newExampleStore()
	sols, err := store.Query([]wcoring.PatternString{
		{S: "?x", P: "win", O: "?y"},
		{S: "?x", P: "nom", O: "?z"},
		{S: "?z", P: "adv", O: "?y"},
	}, wcoring.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var rows []string
	for _, s := range sols {
		rows = append(rows, fmt.Sprintf("%s won; advised by %s", s["y"], s["z"]))
	}
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// Bohr won; advised by Wheeler
	// Strutt won; advised by Thomson
	// Thomson won; advised by Bohr
}

// Regular path queries follow SPARQL property-path syntax.
func ExampleStore_Reach() {
	store := newExampleStore()
	descendants, err := store.Reach("Thorne", "adv+")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(descendants)
	// Output:
	// [Bohr Strutt Thomson Wheeler]
}

// Select layers projection, DISTINCT and ordering over the wco join.
func ExampleStore_Select() {
	store := newExampleStore()
	sols, err := store.Select([]wcoring.PatternString{
		{S: "Nobel", P: "?how", O: "?who"},
	}, wcoring.SelectOptions{
		Project:  []string{"who"},
		Distinct: true,
		OrderBy:  []string{"who"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sols {
		fmt.Println(s["who"])
	}
	// Output:
	// Bohr
	// Strutt
	// Thomson
	// Thorne
	// Wheeler
}
